"""Golden verdicts and transfer soundness for the abstract interpreter.

Two layers of guarantees are pinned here:

* **Golden verdicts** - on the motivating ListSet benchmark, the static
  tier's PROVEN / REFUTED / UNKNOWN / TRIVIAL verdicts per obligation are
  exact expectations, so any transfer-function regression that changes a
  verdict (even soundly, by losing precision on a previously proven
  obligation) is caught immediately.
* **Transfer soundness** - for every operation of generator-minted modules
  (all five :mod:`repro.gen.modgen` families), abstractly applying the
  operation to ``alpha``-abstracted inputs must produce an abstract value
  containing the concrete result: ``leq(alpha(f(v)), absint(f)(alpha(v)))``.
  The property runs in-process and, marked ``absint``, as subprocesses
  pinned to three ``PYTHONHASHSEED`` values (set/dict iteration order must
  not affect verdicts).
"""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.absint import (
    PROVEN,
    REFUTED,
    TRIVIAL,
    UNKNOWN,
    AbstractChecker,
)
from repro.core.predicate import Predicate, always_true
from repro.lang.ast import ECtor
from repro.spec.loader import load_module_text

LIST_SET_NAME = "/coq/unique-list-::-set"

#: In-process transfer-soundness sweep; also executed as a subprocess under
#: pinned hash seeds.  Prints one line: ``checked=<n> violations=<n>``
#: followed by a deterministic digest of every verdict it computed.
SOUNDNESS_SCRIPT = textwrap.dedent("""
    import hashlib
    import itertools

    from repro.analysis.absint import AbstractInterpreter, AbstractChecker
    from repro.analysis.domains import alpha, leq
    from repro.core.predicate import always_true
    from repro.enumeration.values import ValueEnumerator
    from repro.gen.modgen import generate_corpus
    from repro.lang.errors import LangError
    from repro.lang.types import TArrow, substitute_abstract

    checked = violations = 0
    verdict_digest = hashlib.sha256()
    for module in generate_corpus(seed=11, count=15):
        instance = module.definition.instantiate()
        env = instance.program.types
        interp = AbstractInterpreter(instance.program)
        enumerator = ValueEnumerator(env)
        for operation in instance.operations:
            arg_types = [substitute_abstract(t, instance.concrete_type)
                         for t in operation.argument_types]
            if any(isinstance(t, TArrow) for t in arg_types):
                continue
            pools = [list(enumerator.enumerate(t, max_size=5, max_count=4))
                     for t in arg_types]
            for args in itertools.islice(itertools.product(*pools), 48):
                abstract = interp.call_function(
                    operation.name, tuple(alpha(a, env) for a in args))
                checked += 1
                try:
                    concrete = instance.program.call(operation.name, *args)
                except LangError:
                    if not abstract.may_fail:
                        violations += 1
                    continue
                if not leq(alpha(concrete, env), abstract.value):
                    violations += 1
        checker = AbstractChecker(instance)
        q = always_true(instance.concrete_type, instance.program)
        for name, verdict in sorted(
                checker.inductiveness_verdicts(q.decl, None).items()):
            verdict_digest.update(f"{module.name}:{name}={verdict};".encode())
        verdict_digest.update(
            f"{module.name}:suf={checker.sufficiency_verdict()};".encode())
    print(f"checked={checked} violations={violations}")
    print(verdict_digest.hexdigest())
""")

HAN006_MODULE = """
benchmark "/test/han006-dup"
group testing

abstract type t = list

operation empty : t
operation dup : t -> t

type list = Nil | Cons of nat * list

let empty : list = Nil

let dup (s : list) : list = Cons (O, s)

spec wf : t -> bool

let wf (s : list) : bool = True

expected invariant
let inv (s : list) : bool =
  match s with
  | Nil -> True
  | Cons p -> False
"""


# -- golden verdicts on the motivating benchmark ----------------------------------


@pytest.fixture(scope="module")
def listset_checker(listset_instance):
    return AbstractChecker(listset_instance)


def test_listset_sufficiency_is_unknown(listset_checker):
    # The specification quantifies over an enumerated nat; the abstract
    # spec evaluation cannot decide `lookup (insert s i) i` over tops.
    assert listset_checker.sufficiency_verdict() == UNKNOWN


def test_listset_always_true_verdicts(listset_checker, listset_instance):
    q = always_true(listset_instance.concrete_type, listset_instance.program)
    assert listset_checker.inductiveness_verdicts(q.decl, None) == {
        "empty": PROVEN,
        "insert": PROVEN,
        "delete": PROVEN,
        "lookup": TRIVIAL,
    }


def test_listset_oracle_verdicts(listset_checker, listset_definition,
                                 listset_instance):
    oracle = Predicate.from_source(listset_definition.expected_invariant,
                                   listset_instance.program)
    assert listset_checker.inductiveness_verdicts(oracle.decl, None) == {
        "empty": PROVEN,       # expected Nil = True, statically
        "insert": UNKNOWN,     # needs the no-duplicates relational fact
        "delete": UNKNOWN,
        "lookup": TRIVIAL,     # produces no abstract value
    }


def test_listset_false_candidate_is_refuted(listset_checker, listset_instance):
    false = Predicate.from_body(ECtor("False"), "x",
                                listset_instance.concrete_type,
                                listset_instance.program, recursive=False)
    verdicts = listset_checker.inductiveness_verdicts(false.decl, None)
    assert verdicts["empty"] == REFUTED
    assert verdicts["insert"] == REFUTED
    assert verdicts["delete"] == REFUTED
    assert verdicts["lookup"] == TRIVIAL


def test_abstract_application_contains_concrete_results(listset_instance,
                                                        listv):
    from repro.analysis.absint import AbstractInterpreter
    from repro.analysis.domains import alpha, leq
    from repro.lang.values import nat_of_int

    env = listset_instance.program.types
    interp = AbstractInterpreter(listset_instance.program)
    for values in ([], [1], [3, 1], [2, 0, 4]):
        for x in range(3):
            args = (listv(*values), nat_of_int(x))
            result = interp.call_function(
                "insert", tuple(alpha(a, env) for a in args))
            concrete = listset_instance.program.call("insert", *args)
            assert result.value is not None
            assert leq(alpha(concrete, env), result.value)


# -- HAN006: statically disproven invariants --------------------------------------


def test_han006_fires_on_statically_violating_operation():
    from repro.analysis.lint import analyze_definition

    definition = load_module_text(HAN006_MODULE, path="<han006>")
    report = analyze_definition(definition)
    findings = [d for d in report.diagnostics if d.code == "HAN006"]
    assert [d.decl for d in findings] == ["dup"]
    assert "statically proven" in findings[0].message


def test_han006_silent_on_clean_modules(listset_definition):
    from repro.analysis.lint import analyze_definition

    report = analyze_definition(listset_definition)
    assert not [d for d in report.diagnostics if d.code == "HAN006"]


# -- transfer soundness over generated modules ------------------------------------


def _run_soundness(hash_seed=None):
    env = dict(os.environ)
    if hash_seed is not None:
        env["PYTHONHASHSEED"] = hash_seed
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run([sys.executable, "-c", SOUNDNESS_SCRIPT],
                          env=env, check=True, timeout=600,
                          capture_output=True, text=True)
    summary, digest = proc.stdout.strip().splitlines()
    return summary, digest


def test_transfers_over_approximate_concrete_eval():
    summary, _ = _run_soundness()
    checked, violations = (int(part.split("=")[1])
                           for part in summary.split())
    assert checked > 200
    assert violations == 0


@pytest.mark.absint
@pytest.mark.parametrize("hash_seed", ["0", "1", "42"])
def test_soundness_and_verdicts_stable_across_hash_seeds(hash_seed):
    reference_summary, reference_digest = _run_soundness()
    summary, digest = _run_soundness(hash_seed)
    assert summary == reference_summary
    assert "violations=0" in summary
    assert digest == reference_digest
