"""Unit tests for the core model: modules, predicates, stats, config, traces."""

import time

import pytest

from repro.core.config import Deadline, FAST_VERIFIER_BOUNDS, HanoiConfig, InferenceTimeout
from repro.core.module import ModuleDefinition, Operation
from repro.core.predicate import Predicate, always_true
from repro.core.stats import InferenceStats
from repro.core.trace import CounterexampleTrace
from repro.lang.types import TAbstract, TArrow, TData, arrow, substitute_abstract
from repro.lang.values import nat_of_int, v_list
from repro.suite.registry import get_benchmark


def L(*ints):
    return v_list([nat_of_int(i) for i in ints])


# -- Operation / ModuleDefinition -------------------------------------------------


def test_operation_signature_queries():
    op = Operation("insert", arrow(TAbstract(), TData("nat"), TAbstract()))
    assert op.argument_types == (TAbstract(), TData("nat"))
    assert op.result_type == TAbstract()
    assert op.produces_abstract and op.consumes_abstract
    lookup = Operation("lookup", arrow(TAbstract(), TData("nat"), TData("bool")))
    assert not lookup.produces_abstract


def test_module_definition_classification():
    definition = get_benchmark("/coq/unique-list-::-set+binfuncs")
    assert definition.has_binary_operations
    assert not definition.has_higher_order_operations
    hofs = get_benchmark("/coq/unique-list-::-set+hofs")
    assert hofs.has_higher_order_operations
    assert definition.spec_abstract_arity == 2
    assert hofs.spec_abstract_arity == 1


def test_instance_validates_missing_operation():
    definition = get_benchmark("/coq/unique-list-::-set")
    broken = ModuleDefinition(
        name="broken", group="other", source=definition.source,
        concrete_type=definition.concrete_type,
        operations=definition.operations + (Operation("nonexistent", TAbstract()),),
        spec_name=definition.spec_name, spec_signature=definition.spec_signature,
        synthesis_components=definition.synthesis_components,
    )
    with pytest.raises(ValueError):
        broken.instantiate()


def test_operation_concrete_signature(listset_instance):
    op = next(o for o in listset_instance.operations if o.name == "insert")
    concrete = listset_instance.operation_concrete_signature(op)
    assert concrete == arrow(TData("list"), TData("nat"), TData("list"))
    assert substitute_abstract(op.signature, TData("list")) == concrete


def test_component_types_cover_synthesis_components(listset_instance):
    types = listset_instance.component_types()
    assert set(types) == set(listset_instance.definition.synthesis_components)
    assert isinstance(types["lookup"], TArrow)


# -- Predicate ------------------------------------------------------------------------


def test_predicate_from_source_and_call(listset_instance):
    nodup = Predicate.from_source(
        get_benchmark("/coq/unique-list-::-set").expected_invariant, listset_instance.program
    )
    assert nodup(L()) and nodup(L(2, 1))
    assert not nodup(L(1, 1))
    assert nodup.size > 1
    assert "match" in nodup.render()


def test_predicate_consistency_helpers(listset_instance):
    nodup = Predicate.from_source(
        get_benchmark("/coq/unique-list-::-set").expected_invariant, listset_instance.program
    )
    assert nodup.consistent_with([L(), L(1)], [L(2, 2)])
    assert not nodup.consistent_with([L(1, 1)], [])
    assert nodup.accepts_all([L(), L(3)])
    assert nodup.rejects_all([L(0, 0)])


def test_predicate_evaluation_failure_counts_as_rejection(listset_instance):
    partial = Predicate.from_source("""
let partial (l : list) : bool =
  match l with
  | Nil -> True
""", listset_instance.program)
    # Match failure on a non-empty list is treated as "rejects".
    assert partial(L())
    assert not partial(L(1))


def test_always_true_predicate(listset_instance):
    trivial = always_true(TData("list"), listset_instance.program)
    assert trivial(L()) and trivial(L(1, 1))
    assert trivial.size == 3


def test_predicate_requires_single_parameter(listset_instance):
    with pytest.raises(ValueError):
        Predicate.from_source("let two (a : nat) (b : nat) : bool = True",
                              listset_instance.program)


# -- Stats ------------------------------------------------------------------------------


def test_stats_timers_and_derived_columns():
    stats = InferenceStats()
    with stats.verification():
        time.sleep(0.01)
    with stats.synthesis():
        pass
    stats.finish()
    assert stats.verification_calls == 1 and stats.synthesis_calls == 1
    assert stats.verification_time > 0
    assert stats.mean_verification_time == stats.verification_time
    row = stats.as_dict()
    assert set(["time", "tvt", "tvc", "mvt", "tst", "tsc", "mst"]) <= set(row)
    assert row["time"] >= row["tvt"]


def test_stats_mean_is_none_without_calls():
    stats = InferenceStats()
    assert stats.mean_verification_time is None
    assert stats.mean_synthesis_time is None


# -- Config / Deadline -----------------------------------------------------------------------


def test_config_ablation_helpers():
    config = HanoiConfig()
    assert config.synthesis_result_caching and config.counterexample_list_caching
    assert not config.without_synthesis_result_caching().synthesis_result_caching
    assert not config.without_counterexample_list_caching().counterexample_list_caching


def test_verifier_bounds_scaled():
    scaled = FAST_VERIFIER_BOUNDS.scaled(0.5)
    assert scaled.max_structures_single == FAST_VERIFIER_BOUNDS.max_structures_single // 2
    assert scaled.max_nodes_single == FAST_VERIFIER_BOUNDS.max_nodes_single


def test_deadline_expiry():
    deadline = Deadline(None)
    deadline.check()  # no budget, never expires
    assert deadline.remaining() is None
    expired = Deadline(0.0)
    expired.started_at -= 1.0
    assert expired.expired()
    with pytest.raises(InferenceTimeout):
        expired.check()
    assert expired.remaining() == 0.0


# -- Counterexample trace ---------------------------------------------------------------------


def test_trace_replay_keeps_prefix(listset_instance):
    """Figure 6: candidates accepting the new positive keep their negatives."""
    program = listset_instance.program
    accepts_all = Predicate.from_source("let p1 (l : list) : bool = True", program)
    rejects_singletons = Predicate.from_source("""
let p2 (l : list) : bool =
  match l with
  | Nil -> True
  | Cons (hd, tl) -> (match tl with | Nil -> False | Cons (h2, t2) -> True)
""", program)
    trace = CounterexampleTrace()
    trace.record(accepts_all, [L(1, 1)])
    trace.record(rejects_singletons, [L(2, 2)])
    kept = trace.replay([L(3)])  # new positive: a singleton list
    assert kept == {L(1, 1)}
    assert len(trace) == 1  # truncated at the first rejecting candidate


def test_trace_replay_keeps_everything_when_all_accept(listset_instance):
    program = listset_instance.program
    accepts_all = Predicate.from_source("let p (l : list) : bool = True", program)
    trace = CounterexampleTrace()
    trace.record(accepts_all, [L(1, 1)])
    trace.record(accepts_all, [L(2, 2)])
    kept = trace.replay([L(0)])
    assert kept == {L(1, 1), L(2, 2)}
    assert len(trace) == 2
    trace.clear()
    assert len(trace) == 0
