"""Integration-level tests of the Hanoi CEGIS loop itself."""


from repro.core.config import FAST_VERIFIER_BOUNDS, HanoiConfig
from repro.core.hanoi import HanoiInference, infer_invariant
from repro.core.result import Status
from repro.lang.values import nat_of_int, v_list
from repro.suite.registry import get_benchmark


def L(*ints):
    return v_list([nat_of_int(i) for i in ints])


def test_motivating_example_infers_no_duplicates(fast_config):
    result = infer_invariant(get_benchmark("/coq/unique-list-::-set"), fast_config)
    assert result.succeeded
    invariant = result.invariant
    assert invariant(L()) and invariant(L(2, 1)) and invariant(L(5, 3, 0))
    assert not invariant(L(1, 1)) and not invariant(L(2, 0, 2))
    assert result.invariant_size >= 5
    assert result.stats.verification_calls > 0
    assert result.stats.synthesis_calls > 0


def test_result_row_contains_figure7_columns(fast_config):
    result = infer_invariant(get_benchmark("/coq/unique-list-::-set"), fast_config)
    row = result.as_row()
    for column in ("name", "mode", "status", "size", "time", "tvt", "tvc", "mvt", "tst", "tsc", "mst"):
        assert column in row
    assert row["status"] == Status.SUCCESS


def test_events_record_cegis_progress(fast_config):
    engine = HanoiInference(get_benchmark("/coq/unique-list-::-set"), config=fast_config)
    result = engine.infer()
    kinds = [event["event"] for event in result.events]
    assert "synthesized" in kinds
    assert "success" in kinds
    # The motivating example requires both weakening and strengthening steps.
    assert any(k in ("visible-counterexample", "late-visible-counterexample") for k in kinds)
    assert any(k in ("sufficiency-counterexample", "inductiveness-counterexample") for k in kinds)


def test_timeout_is_reported_not_raised():
    config = HanoiConfig(verifier_bounds=FAST_VERIFIER_BOUNDS, timeout_seconds=0.0)
    result = infer_invariant(get_benchmark("/coq/unique-list-::-set"), config)
    assert result.status == Status.TIMEOUT
    assert result.invariant is None


def test_spec_violation_is_detected(fast_config):
    """A module that genuinely violates its specification terminates with the
    Figure-4 "Counterexample" outcome instead of looping forever."""
    definition = get_benchmark("/coq/unique-list-::-set")
    broken_source = definition.source.replace(
        "let insert (l : list) (x : nat) : list =\n  if lookup l x then l else Cons (x, l)",
        "let insert (l : list) (x : nat) : list = l",
    )
    assert broken_source != definition.source
    from dataclasses import replace as dc_replace
    broken = dc_replace(definition, name="broken-listset", source=broken_source)
    result = infer_invariant(broken, fast_config)
    assert result.status == Status.SPEC_VIOLATION
    assert "specification" in result.message


def test_caching_flags_affect_behaviour(fast_config):
    baseline = HanoiInference(get_benchmark("/coq/unique-list-::-set"), config=fast_config).infer()
    no_src = HanoiInference(
        get_benchmark("/coq/unique-list-::-set"),
        config=fast_config.without_synthesis_result_caching(),
    ).infer()
    no_clc = HanoiInference(
        get_benchmark("/coq/unique-list-::-set"),
        config=fast_config.without_counterexample_list_caching(),
    ).infer()
    assert baseline.succeeded and no_src.succeeded and no_clc.succeeded
    assert no_src.stats.synthesis_cache_hits == 0
    assert no_clc.stats.trace_replays == 0
    assert baseline.stats.verification_calls <= no_clc.stats.verification_calls


def test_positive_examples_only_grow_and_negatives_reset(fast_config):
    """The executable content of the termination argument (Theorem 3.10): V+
    grows monotonically across weakening steps."""
    engine = HanoiInference(get_benchmark("/coq/unique-list-::-set"), config=fast_config)
    result = engine.infer()
    assert result.succeeded
    positive_total = sum(
        len(event.get("added", [])) for event in result.events
        if event["event"] in ("visible-counterexample", "late-visible-counterexample")
    )
    assert positive_total == result.stats.positives_added
    assert result.stats.positives_added >= 1
