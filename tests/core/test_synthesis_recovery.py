"""Regression: synthesis failure on trace-padded examples must recover.

Section 4.3's trace completeness pads unknown sub-values of examples to
*false*; the padding is sound only because a later visible-inductiveness
check is supposed to move any constructible padded value into V+.  Before
the recovery path in ``HanoiInference.infer`` existed, a ``SynthesisFailure``
terminated the loop *before* any such check could run: on this bound-3
container (found by the differential fuzzer, ``/gen/bounded-14``) the padded
length-3 sub-chain of a length-4 negative makes ``valid`` inconsistent with
the example sets, every candidate body is rejected, and inference reported
``synthesis-failure`` even though ``valid`` is a perfectly good invariant.

The fix runs a V+-closure check on synthesis failure, promotes constructible
outputs into V+, and resynthesizes; this module must now succeed and the
event log must show the recovery firing.
"""

import pytest

from repro.core.config import FAST_VERIFIER_BOUNDS, HanoiConfig
from repro.core.result import Status
from repro.experiments.runner import run_module
from repro.spec import load_module_text

CAP3_MODULE = '''\
benchmark "/test/cap3-stack"
group test
description "Bound-3 container whose padded sub-traces defeat one-shot synthesis."

abstract type t = list

operation empty : t
operation push : t -> nat -> t
operation pop : t -> t
spec spec : t -> bool
helpers valid

type list = Nil | Cons of nat * list

let empty : list = Nil

let rec size (s : list) : nat =
  match s with
  | Nil -> O
  | Cons (hd, tl) -> S (size tl)

let valid (s : list) : bool =
  nat_leq (size s) 3

let push (s : list) (x : nat) : list =
  if nat_lt (size s) 3 then Cons (x, s) else s

let pop (s : list) : list =
  match s with
  | Nil -> Nil
  | Cons (hd, tl) -> tl

let spec (s : list) : bool =
  valid s

expected invariant
let expected (s : list) : bool =
  nat_leq (size s) 3
'''


@pytest.fixture(scope="module")
def recovery_result():
    definition = load_module_text(CAP3_MODULE)
    config = HanoiConfig(verifier_bounds=FAST_VERIFIER_BOUNDS,
                         timeout_seconds=90)
    return run_module(definition, mode="hanoi", config=config)


def test_inference_succeeds_despite_padding(recovery_result):
    assert recovery_result.status == Status.SUCCESS, recovery_result.message
    assert "valid" in recovery_result.render_invariant()


def test_recovery_events_are_logged(recovery_result):
    recoveries = [event for event in recovery_result.events
                  if event.get("event") == "synthesis-recovery"]
    assert recoveries, "the V+-closure recovery never fired"
    # Each recovery names the operation whose closure counterexample grew V+.
    assert all(event.get("operation") for event in recoveries)
