"""The verifier-backend ladder: selection, trajectory identity, and stats.

The ladder's contract (docs/verification.md): statically PROVEN obligations
are skipped, everything else runs through the paper's bounded enumerative
tester in the original operation order, so the loop's trajectory - the
candidates visited, the counterexamples found, the final invariant - is
identical to a pure enumerative run.
"""

import pytest

from repro.experiments.runner import quick_config, run_module
from repro.gen.diff import outcome_fingerprint
from repro.verify.backend import BACKEND_NAMES, make_backend


def test_backend_names_cover_the_config_surface():
    assert BACKEND_NAMES == ("enumerative", "abstract", "ladder")


def test_make_backend_rejects_unknown_names(listset_instance):
    with pytest.raises(ValueError):
        make_backend("no-such-backend", instance=listset_instance,
                     verifier=None, checker=None)


def test_ladder_matches_enumerative_outcome(listset_definition):
    config = quick_config()
    enumerative = run_module(listset_definition, mode="hanoi",
                             config=config.with_verifier_backend("enumerative"))
    ladder = run_module(listset_definition, mode="hanoi",
                        config=config.with_verifier_backend("ladder"))
    assert enumerative.succeeded and ladder.succeeded
    assert outcome_fingerprint(ladder) == outcome_fingerprint(enumerative)


def test_ladder_discharges_obligations_statically(listset_definition):
    config = quick_config().with_verifier_backend("ladder")
    result = run_module(listset_definition, mode="hanoi", config=config)
    assert result.succeeded
    assert result.stats.static_proofs > 0
    assert result.stats.static_unknowns > 0
    # The counters survive the result round-trip (Figure-7 columns).
    as_dict = result.stats.as_dict()
    assert as_dict["static_proofs"] == result.stats.static_proofs
    assert as_dict["static_refutations"] == result.stats.static_refutations
    assert as_dict["static_unknowns"] == result.stats.static_unknowns


def test_enumerative_backend_keeps_static_counters_at_zero(listset_definition):
    result = run_module(listset_definition, mode="hanoi", config=quick_config())
    assert result.succeeded
    assert result.stats.static_proofs == 0
    assert result.stats.static_refutations == 0
    assert result.stats.static_unknowns == 0


def test_abstract_backend_is_the_documented_unsound_ablation(listset_definition):
    """The static tier alone accepts UNKNOWN obligations, so it converges
    on the trivial invariant immediately - useful as a diagnostic of what
    the abstract domains alone can see, never as a sound verifier."""
    config = quick_config().with_verifier_backend("abstract")
    result = run_module(listset_definition, mode="hanoi", config=config)
    assert result.succeeded
    assert result.iterations == 1
    assert "true" in result.render_invariant().lower()


def test_ladder_emits_static_proof_events(listset_definition):
    from repro.obs.events import CountingClock, Emitter
    from repro.obs.sinks import InMemorySink
    from repro.core.hanoi import HanoiInference

    sink = InMemorySink()
    emitter = Emitter(sinks=[sink], run="listset/ladder",
                      clock=CountingClock())
    config = quick_config().with_verifier_backend("ladder")
    result = HanoiInference(listset_definition, config,
                            emitter=emitter).infer()
    assert result.succeeded
    names = {r["name"] for r in sink.records}
    assert "static-proof" in names
    assert "static-check" in names
