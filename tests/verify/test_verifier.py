"""Unit tests for the enumerative verifier (sufficiency checking)."""

import pytest

from repro.core.config import Deadline, FAST_VERIFIER_BOUNDS, InferenceTimeout, VerifierBounds
from repro.core.predicate import Predicate, always_true
from repro.core.stats import InferenceStats
from repro.suite.registry import get_benchmark
from repro.verify.result import SufficiencyCounterexample, Valid
from repro.verify.tester import Verifier


@pytest.fixture(scope="module")
def listset():
    return get_benchmark("/coq/unique-list-::-set").instantiate()


@pytest.fixture(scope="module")
def nodup(listset):
    return Predicate.from_source(
        get_benchmark("/coq/unique-list-::-set").expected_invariant, listset.program
    )


def test_trivial_invariant_is_not_sufficient(listset):
    verifier = Verifier(listset, bounds=FAST_VERIFIER_BOUNDS)
    result = verifier.check_sufficiency(always_true(listset.concrete_type, listset.program))
    assert isinstance(result, SufficiencyCounterexample)
    # The witness is a list with a duplicate (it satisfies the candidate but
    # falsifies the SET specification).
    (witness,) = result.witnesses
    assert not _no_duplicates(witness)


def test_no_duplicates_invariant_is_sufficient(listset, nodup):
    verifier = Verifier(listset, bounds=FAST_VERIFIER_BOUNDS)
    assert isinstance(verifier.check_sufficiency(nodup), Valid)


def test_sufficiency_counterexample_satisfies_candidate(listset):
    verifier = Verifier(listset, bounds=FAST_VERIFIER_BOUNDS)
    weak = Predicate.from_source("""
let weak (l : list) : bool =
  match l with
  | Nil -> True
  | Cons (hd, tl) -> True
""", listset.program)
    result = verifier.check_sufficiency(weak)
    assert isinstance(result, SufficiencyCounterexample)
    assert all(weak(w) for w in result.witnesses)


def test_stats_are_recorded(listset, nodup):
    stats = InferenceStats()
    verifier = Verifier(listset, bounds=FAST_VERIFIER_BOUNDS, stats=stats)
    verifier.check_sufficiency(nodup)
    assert stats.verification_calls == 1
    assert stats.verification_time > 0
    assert stats.structures_tested > 0


def test_check_predicate_finds_counterexample(listset):
    verifier = Verifier(listset, bounds=FAST_VERIFIER_BOUNDS)
    never = Predicate.from_source("let never (l : list) : bool = False", listset.program)
    result = verifier.check_predicate(never)
    assert isinstance(result, SufficiencyCounterexample)
    always = Predicate.from_source("let always (l : list) : bool = True", listset.program)
    assert isinstance(verifier.check_predicate(always), Valid)


def test_predicates_agree_bounded(listset, nodup):
    verifier = Verifier(listset, bounds=FAST_VERIFIER_BOUNDS)
    assert verifier.predicates_agree(nodup, nodup)
    never = Predicate.from_source("let never (l : list) : bool = False", listset.program)
    assert not verifier.predicates_agree(nodup, never)


def test_deadline_is_honoured(listset, nodup):
    expired = Deadline(0.0)
    expired.started_at -= 1.0
    verifier = Verifier(listset, bounds=VerifierBounds(), deadline=expired)
    with pytest.raises(InferenceTimeout):
        verifier.check_sufficiency(nodup)


def _no_duplicates(value):
    from repro.lang.values import list_of_value

    items = [str(v) for v in list_of_value(value)]
    return len(items) == len(set(items))
