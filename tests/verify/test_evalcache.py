"""Tests for the cross-iteration verification evaluation cache.

The cache must be *invisible* in outcomes: every check returns exactly the
verdict and counterexample the uncached enumeration would, and whole
inference runs produce byte-identical statuses, invariants, and event logs.
What changes is only how much evaluation work repeats - asserted here through
the hit/miss counters.
"""

import os

import pytest

from repro.core.config import FAST_VERIFIER_BOUNDS, HanoiConfig
from repro.core.hanoi import HanoiInference
from repro.core.predicate import Predicate, always_true
from repro.core.stats import InferenceStats
from repro.enumeration.functions import FunctionEnumerator
from repro.enumeration.values import ValueEnumerator
from repro.inductive.relation import ConditionalInductivenessChecker
from repro.spec.loader import load_module_file
from repro.suite.registry import get_benchmark
from repro.verify.evalcache import EvaluationCache
from repro.verify.result import SufficiencyCounterexample, Valid
from repro.verify.tester import Verifier

CONFIG = HanoiConfig(verifier_bounds=FAST_VERIFIER_BOUNDS, timeout_seconds=90)

#: Multi-iteration built-ins (plenty of repeated checks) plus single-iteration
#: ones (the cache must not change their behaviour either).
EQUIVALENCE_SAMPLE = [
    "/coq/unique-list-::-set",
    "/coq/sorted-list-::-set",
    "/other/stutter-list",
    "/other/sized-list",
    "/vfa/assoc-list-::-table",
]

MODULES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "examples", "modules")
PACK_FILES = ["bounded-stack.hanoi", "two-list-queue.hanoi", "parity-counter.hanoi"]


def _run_pair(definition):
    """One inference run with the evaluation cache and one without."""
    cached = HanoiInference(definition, config=CONFIG).infer()
    uncached = HanoiInference(
        definition, config=CONFIG.without_evaluation_caching()).infer()
    return cached, uncached


def _assert_equivalent(cached, uncached):
    assert cached.status == uncached.status
    assert cached.iterations == uncached.iterations
    assert cached.render_invariant() == uncached.render_invariant()
    # Counterexample events (witnesses added, operations blamed) must match
    # step for step: the cache may never alter which counterexample a check
    # reports.
    assert cached.events == uncached.events
    assert uncached.stats.eval_cache_hits == 0
    assert uncached.stats.eval_cache_misses == 0


@pytest.mark.parametrize("name", EQUIVALENCE_SAMPLE)
def test_cached_and_uncached_inference_agree_on_builtins(name):
    cached, uncached = _run_pair(get_benchmark(name))
    _assert_equivalent(cached, uncached)
    assert cached.succeeded


@pytest.mark.parametrize("filename", PACK_FILES)
def test_cached_and_uncached_inference_agree_on_example_packs(filename):
    definition = load_module_file(os.path.join(MODULES_DIR, filename))
    cached, uncached = _run_pair(definition)
    _assert_equivalent(cached, uncached)
    assert cached.succeeded


def test_multi_iteration_runs_hit_the_cache():
    result = HanoiInference(get_benchmark("/coq/sorted-list-::-set"), config=CONFIG).infer()
    assert result.succeeded
    assert result.iterations > 1
    assert result.stats.eval_cache_hits > 0
    assert result.stats.eval_cache_misses > 0
    # The counters travel through serialization with everything else.
    row = result.stats.as_dict()
    assert row["eval_cache_hits"] == result.stats.eval_cache_hits
    restored = InferenceStats.from_dict(result.stats.to_dict())
    assert restored.eval_cache_hits == result.stats.eval_cache_hits
    assert restored.eval_cache_misses == result.stats.eval_cache_misses


def test_config_toggle_disables_the_cache():
    engine = HanoiInference(
        get_benchmark("/coq/unique-list-::-set"),
        config=CONFIG.without_evaluation_caching())
    assert engine.eval_cache is None
    assert engine.verifier.eval_cache is None
    assert engine.checker.eval_cache is None


# -- verifier-level behaviour ---------------------------------------------------


@pytest.fixture(scope="module")
def listset():
    return get_benchmark("/coq/unique-list-::-set").instantiate()


@pytest.fixture(scope="module")
def nodup(listset):
    return Predicate.from_source(
        get_benchmark("/coq/unique-list-::-set").expected_invariant, listset.program)


def test_repeated_sufficiency_checks_replay_verdicts(listset, nodup):
    stats = InferenceStats()
    verifier = Verifier(listset, bounds=FAST_VERIFIER_BOUNDS, stats=stats,
                        eval_cache=EvaluationCache())
    trivial = always_true(listset.concrete_type, listset.program)

    first = verifier.check_sufficiency(trivial)
    assert isinstance(first, SufficiencyCounterexample)
    misses_after_first = stats.eval_cache_misses

    second = verifier.check_sufficiency(trivial)
    assert isinstance(second, SufficiencyCounterexample)
    assert second.witnesses == first.witnesses
    # The replay resolved no new spec applications.
    assert stats.eval_cache_misses == misses_after_first
    assert stats.eval_cache_hits > 0

    # A different candidate over the same stream still gets the uncached
    # verdict (the oracle invariant is sufficient).
    assert isinstance(verifier.check_sufficiency(nodup), Valid)

    uncached = Verifier(listset, bounds=FAST_VERIFIER_BOUNDS)
    assert isinstance(uncached.check_sufficiency(nodup), Valid)
    baseline = uncached.check_sufficiency(trivial)
    assert baseline.witnesses == first.witnesses


def test_inductiveness_checks_memoize_operation_applications(listset, nodup):
    stats = InferenceStats()
    cache = EvaluationCache()
    checker = ConditionalInductivenessChecker(
        listset, ValueEnumerator(listset.program.types), FunctionEnumerator(listset),
        FAST_VERIFIER_BOUNDS, stats, eval_cache=cache)

    first = checker.check(nodup, nodup)
    assert isinstance(first, Valid)
    assert len(cache.operations) > 0
    misses_after_first = stats.eval_cache_misses

    second = checker.check(nodup, nodup)
    assert isinstance(second, Valid)
    assert stats.eval_cache_misses == misses_after_first
    assert stats.eval_cache_hits > 0

    # Same verdict as an uncached checker.
    plain = ConditionalInductivenessChecker(
        listset, ValueEnumerator(listset.program.types), FunctionEnumerator(listset),
        FAST_VERIFIER_BOUNDS)
    assert isinstance(plain.check(nodup, nodup), Valid)


def test_operation_memo_respects_its_entry_cap(listset, nodup):
    cache = EvaluationCache(max_operation_entries=5)
    checker = ConditionalInductivenessChecker(
        listset, ValueEnumerator(listset.program.types), FunctionEnumerator(listset),
        FAST_VERIFIER_BOUNDS, eval_cache=cache)
    assert isinstance(checker.check(nodup, nodup), Valid)
    assert len(cache.operations) == 5


# -- Section 4.3 accounting ------------------------------------------------------


def test_structures_tested_counts_structures_not_assignments(listset, nodup):
    """The unique-list spec quantifies over two values (one abstract, one
    nat), so every processed assignment accounts for two structures and the
    structure total respects the ``max_total`` discipline."""
    for eval_cache in (None, EvaluationCache()):
        stats = InferenceStats()
        verifier = Verifier(listset, bounds=FAST_VERIFIER_BOUNDS, stats=stats,
                            eval_cache=eval_cache)
        assert isinstance(verifier.check_sufficiency(nodup), Valid)
        assert stats.structures_tested > 0
        assert stats.structures_tested % 2 == 0
        assert stats.structures_tested <= FAST_VERIFIER_BOUNDS.max_total
