"""Differential soundness of the abstract proof tier.

Two harnesses from :mod:`repro.gen.diff` are exercised:

* :func:`verifier_backend_mismatches` - ladder runs must reproduce
  enumerative outcomes byte-for-byte (trajectory identity);
* :func:`verifier_soundness_mismatches` - no statically PROVEN obligation
  may admit an enumerated counterexample, across a spread of candidate
  invariants (trivial, oracle, per-constructor discriminators).

A quick subset always runs; the full sweep over all 28 built-in benchmarks
and every example module is marked ``absint`` and gates on ``ABSINT_FULL=1``
(the nightly CI job).
"""

import glob
import os
import pathlib

import pytest

from repro.experiments.runner import quick_config
from repro.gen.diff import (
    fuzz_module,
    verifier_backend_mismatches,
    verifier_soundness_mismatches,
)
from repro.spec.loader import load_module_file
from repro.suite.registry import all_benchmark_names, get_benchmark

EXAMPLES = sorted(glob.glob(str(
    pathlib.Path(__file__).resolve().parents[2] / "examples" / "modules"
    / "*.hanoi")))

QUICK_BENCHMARKS = [
    "/coq/unique-list-::-set",
    "/coq/sorted-list-::-set",
]

FULL = os.environ.get("ABSINT_FULL") == "1"


@pytest.mark.parametrize("name", QUICK_BENCHMARKS)
def test_quick_builtins_have_no_backend_mismatches(name):
    definition = get_benchmark(name)
    assert verifier_backend_mismatches(
        definition, modes=("hanoi",), config=quick_config()) == []


@pytest.mark.parametrize("name", QUICK_BENCHMARKS)
def test_quick_builtins_have_no_soundness_mismatches(name):
    definition = get_benchmark(name)
    assert verifier_soundness_mismatches(
        definition, config=quick_config()) == []


def test_example_module_round_trips_through_the_ladder():
    definition = load_module_file(EXAMPLES[0])
    assert verifier_backend_mismatches(
        definition, modes=("hanoi",), config=quick_config()) == []
    assert verifier_soundness_mismatches(
        definition, config=quick_config()) == []


def test_fuzz_module_check_verifier_flag_runs_both_harnesses():
    definition = get_benchmark(QUICK_BENCHMARKS[0])
    report = fuzz_module(definition, modes=("hanoi",), config=quick_config(),
                         require_success=(), check_oracle=False,
                         check_verifier=True)
    assert report.ok
    # 4 cache variants + the 2 backend comparison runs.
    assert report.runs == 6


@pytest.mark.absint
@pytest.mark.skipif(not FULL, reason="full differential sweep gates on ABSINT_FULL=1")
@pytest.mark.parametrize("name", all_benchmark_names())
def test_full_builtin_sweep(name):
    definition = get_benchmark(name)
    config = quick_config()
    assert verifier_backend_mismatches(
        definition, modes=("hanoi",), config=config) == []
    assert verifier_soundness_mismatches(definition, config=config) == []


@pytest.mark.absint
@pytest.mark.skipif(not FULL, reason="full differential sweep gates on ABSINT_FULL=1")
@pytest.mark.parametrize("path", EXAMPLES)
def test_full_example_sweep(path):
    definition = load_module_file(path)
    config = quick_config()
    assert verifier_backend_mismatches(
        definition, modes=("hanoi",), config=config) == []
    assert verifier_soundness_mismatches(definition, config=config) == []
