"""Unit tests for the trace sinks and the process-global registry."""

import io
import json
import queue
import threading

import pytest

from repro.obs.events import NULL_EMITTER, SCHEMA_VERSION, CountingClock, Emitter
from repro.obs.sinks import (
    InMemorySink,
    JsonlTraceSink,
    LegacyEventSink,
    LiveRenderer,
    QueueSink,
    RingBufferSink,
    emitter_for_run,
    install_sink,
    installed_sinks,
    read_trace,
    reset_sinks,
    uninstall_sink,
)


@pytest.fixture(autouse=True)
def clean_registry():
    """Tests must not leak sinks into each other (or into inference tests)."""
    reset_sinks()
    yield
    reset_sinks()


def test_legacy_event_sink_rebuilds_seed_event_log():
    sink = LegacyEventSink()
    emitter = Emitter(sinks=[sink], run="b/m", clock=CountingClock())
    emitter.emit("synthesized", {"candidate_size": 2}, legacy=True)
    with emitter.span("iteration"):
        emitter.emit("eval-cache", {"hits": 5, "misses": 1}, cat="cache")
        emitter.emit("success", {"candidate_size": 2}, legacy=True)
    # Only loop-category point events participate; layout matches the seed's.
    assert sink.events == [
        {"event": "synthesized", "candidate_size": 2},
        {"event": "success", "candidate_size": 2},
    ]


def test_jsonl_sink_round_trips_and_tolerates_truncation(tmp_path):
    path = tmp_path / "sub" / "trace.jsonl"
    with JsonlTraceSink(str(path)) as sink:
        emitter = Emitter(sinks=[sink], run="b/m", clock=CountingClock())
        emitter.emit("alpha", {"x": 1})
        with emitter.span("phase"):
            pass

    records = read_trace(str(path))
    assert [r["name"] for r in records] == ["alpha", "phase", "phase"]
    assert all(r["v"] == SCHEMA_VERSION for r in records)

    # A run killed mid-append leaves a truncated final line; loading skips it.
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"v":1,"seq":99,"tr')
    assert len(read_trace(str(path))) == 3


def test_queue_sink_tags_records_with_task_label():
    transport = queue.Queue()
    sink = QueueSink(transport, task="bench/hanoi")
    original = {"v": SCHEMA_VERSION, "seq": 1, "name": "alpha"}
    sink.handle(original)
    forwarded = transport.get_nowait()
    assert forwarded["task"] == "bench/hanoi"
    # The shared record itself is never mutated.
    assert "task" not in original


def test_registry_install_uninstall_reset():
    assert installed_sinks() == []
    first = install_sink(InMemorySink())
    second = install_sink(InMemorySink())
    assert installed_sinks() == [first, second]
    # The returned list is a copy; mutating it changes nothing.
    installed_sinks().clear()
    assert installed_sinks() == [first, second]
    uninstall_sink(first)
    uninstall_sink(first)  # absent → no-op
    assert installed_sinks() == [second]
    reset_sinks()
    assert installed_sinks() == []


def test_emitter_for_run_null_without_sinks_live_with():
    assert emitter_for_run("b/m") is NULL_EMITTER
    sink = install_sink(InMemorySink())
    emitter = emitter_for_run("b/m")
    assert emitter.enabled
    emitter.emit("alpha")
    assert sink.records[0]["run"] == "b/m"


def test_live_renderer_prints_run_lines_and_heartbeats():
    out = io.StringIO()
    renderer = LiveRenderer(stream=out, min_interval=0.0)
    emitter = Emitter(sinks=[renderer], run="b/m", clock=CountingClock())
    emitter.emit("run-start", {"benchmark": "b", "mode": "m"}, cat="run")
    with emitter.span("iteration", {"index": 1}):
        emitter.emit("eval-cache", {"hits": 1, "misses": 0}, cat="cache")
    renderer.handle({"v": SCHEMA_VERSION, "seq": 1, "ts": 0, "run": "b/m",
                     "kind": "event", "cat": "stream", "name": "heartbeat",
                     "span": None, "task": "b/m"})
    emitter.emit("run-end", {"status": "success", "iterations": 4,
                             "stats": {}}, cat="run")

    lines = out.getvalue().splitlines()
    assert lines == [
        "  ~ b/m: started",
        "  ~ b/m: iteration #1",
        "  ~ b/m: still running (heartbeat)",
        "  ~ b/m: success after 4 iteration(s)",
    ]


def test_live_renderer_throttles_iteration_lines():
    out = io.StringIO()
    renderer = LiveRenderer(stream=out, min_interval=3600.0)
    emitter = Emitter(sinks=[renderer], run="b/m", clock=CountingClock())
    for index in range(5):
        with emitter.span("iteration", {"index": index}):
            pass
    assert out.getvalue().count("iteration") == 1


def test_jsonl_sink_records_are_compact_single_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    with JsonlTraceSink(str(path)) as sink:
        Emitter(sinks=[sink], run="b/m", clock=CountingClock()).emit(
            "alpha", {"x": [1, 2]})
    (line,) = path.read_text().splitlines()
    assert json.loads(line)["data"] == {"x": [1, 2]}
    assert ": " not in line and ", " not in line  # compact separators


def test_ring_buffer_cursors_and_close():
    sink = RingBufferSink(capacity=16)
    for index in range(3):
        sink.handle({"seq": index})
    records, cursor, closed = sink.after(0)
    assert [r["seq"] for r in records] == [0, 1, 2]
    assert cursor == 3 and not closed
    # Nothing new past the cursor: immediate empty return without a wait.
    assert sink.after(cursor) == ([], 3, False)
    sink.handle({"seq": 3})
    records, cursor, _ = sink.after(cursor)
    assert [r["seq"] for r in records] == [3] and cursor == 4
    sink.close()
    assert sink.after(cursor) == ([], 4, True)


def test_ring_buffer_overflow_skips_not_shifts():
    sink = RingBufferSink(capacity=2)
    for index in range(5):
        sink.handle({"seq": index})
    # A reader at cursor 0 fell 3 records behind: it gets the surviving
    # tail and a next-cursor that reveals the gap, not re-numbered records.
    records, cursor, _ = sink.after(0)
    assert [r["seq"] for r in records] == [3, 4]
    assert cursor == 5


def test_ring_buffer_blocking_reader_wakes_on_new_record():
    sink = RingBufferSink()
    seen = []

    def reader():
        seen.append(sink.after(0, wait=30.0))

    thread = threading.Thread(target=reader)
    thread.start()
    sink.handle({"seq": 0})
    thread.join(timeout=10)
    assert not thread.is_alive()
    records, cursor, closed = seen[0]
    assert [r["seq"] for r in records] == [0] and cursor == 1 and not closed


def test_ring_buffer_blocking_reader_wakes_on_close():
    sink = RingBufferSink()
    seen = []
    thread = threading.Thread(target=lambda: seen.append(sink.after(0, wait=30.0)))
    thread.start()
    sink.close()
    thread.join(timeout=10)
    assert not thread.is_alive()
    assert seen[0] == ([], 0, True)


def test_ring_buffer_copies_records():
    sink = RingBufferSink()
    record = {"seq": 0}
    sink.handle(record)
    record["seq"] = 99  # emitters reuse dicts; the buffer must not alias
    (stored,), _, _ = sink.after(0)
    assert stored == {"seq": 0}
