"""End-to-end CLI test: `--trace` on a sweep, then `repro trace` analysis."""

import json

import pytest

from repro import cli
from repro.obs.analyze import validate_trace
from repro.obs.sinks import installed_sinks, read_trace, reset_sinks

LIST_SET_NAME = "/coq/unique-list-::-set"


@pytest.fixture(autouse=True)
def clean_registry():
    reset_sinks()
    yield
    reset_sinks()


def test_run_trace_then_analyze_and_export(tmp_path, capsys):
    trace_path = tmp_path / "trace.jsonl"
    chrome_path = tmp_path / "chrome.json"

    assert cli.main(["run", "--profile", "quick", "--jobs", "2",
                     "--benchmarks", LIST_SET_NAME, "/other/sized-list",
                     "--output", str(tmp_path / "results.jsonl"),
                     "--trace", str(trace_path)]) == 0
    # The command uninstalled its sinks and closed the file on the way out.
    assert installed_sinks() == []

    records = read_trace(str(trace_path))
    assert validate_trace(records) == []
    runs = {r["run"] for r in records if r.get("name") == "run-end"}
    assert runs == {f"{LIST_SET_NAME}/hanoi", "/other/sized-list/hanoi"}

    capsys.readouterr()
    assert cli.main(["trace", str(trace_path), "--chrome",
                     str(chrome_path)]) == 0
    out = capsys.readouterr().out
    assert "Per-phase time breakdown" in out
    assert "Cache hit rates" in out
    assert "CROSS-CHECK" not in out  # events and stats agree end to end

    with open(chrome_path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert {e["args"]["name"] for e in payload["traceEvents"]
            if e["ph"] == "M"} == runs


def test_live_flag_prints_progress(tmp_path, capsys):
    assert cli.main(["run", "--profile", "quick", "--jobs", "1",
                     "--benchmarks", LIST_SET_NAME,
                     "--output", str(tmp_path / "results.jsonl"),
                     "--live"]) == 0
    err = capsys.readouterr().err
    assert f"~ {LIST_SET_NAME}/hanoi: started" in err
    assert "success after" in err
