"""Unit tests for the event/span emitter (`repro.obs.events`)."""

from repro.obs.events import (
    NULL_EMITTER,
    SCHEMA_VERSION,
    CountingClock,
    Emitter,
    LegacyRecorder,
    legacy_entry,
)
from repro.obs.sinks import InMemorySink


def traced_emitter():
    sink = InMemorySink()
    emitter = Emitter(sinks=[sink], run="bench/mode", clock=CountingClock())
    return emitter, sink


def test_counting_clock_is_deterministic():
    clock = CountingClock()
    assert [clock(), clock(), clock()] == [1, 2, 3]
    assert CountingClock(start=10)() == 11


def test_emit_builds_versioned_records_with_increasing_seq():
    emitter, sink = traced_emitter()
    emitter.emit("alpha", {"x": 1}, cat="cache")
    emitter.emit("beta")

    first, second = sink.records
    assert first["v"] == SCHEMA_VERSION
    assert first["run"] == "bench/mode"
    assert first["kind"] == "event"
    assert first["cat"] == "cache"
    assert first["name"] == "alpha"
    assert first["data"] == {"x": 1}
    assert first["span"] is None
    # Empty payloads are omitted, not serialized as {}.
    assert "data" not in second
    assert [r["seq"] for r in sink.records] == [1, 2]
    # The CountingClock re-bases to the emitter's creation tick.
    assert [r["ts"] for r in sink.records] == [1, 2]


def test_legacy_flag_maps_to_loop_category():
    emitter, sink = traced_emitter()
    emitter.emit("synthesized", {"candidate_size": 3}, legacy=True)
    assert sink.records[0]["cat"] == "loop"


def test_spans_nest_and_time():
    emitter, sink = traced_emitter()
    with emitter.span("outer"):
        emitter.emit("inside")
        with emitter.span("inner", {"depth": 2}):
            pass

    kinds = [(r["kind"], r["name"]) for r in sink.records]
    assert kinds == [
        ("span-start", "outer"),
        ("event", "inside"),
        ("span-start", "inner"),
        ("span-end", "inner"),
        ("span-end", "outer"),
    ]
    outer_start, inside, inner_start, inner_end, outer_end = sink.records
    # The start record's `span` is the *parent*; the id its own.
    assert outer_start["span"] is None and outer_start["id"] == 1
    assert inside["span"] == 1
    assert inner_start["span"] == 1 and inner_start["id"] == 2
    assert inner_start["data"] == {"depth": 2}
    assert inner_end["id"] == 2 and outer_end["id"] == 1
    assert inner_end["dur"] == inner_end["ts"] - inner_start["ts"]
    assert outer_end["dur"] == outer_end["ts"] - outer_start["ts"]


def test_mismatched_span_close_is_tolerated():
    emitter, sink = traced_emitter()
    outer = emitter.span("outer")
    emitter.span("inner")
    # Closing the outer span while the inner is still open (an exception
    # unwinding several frames) must not corrupt the stack.
    outer.__exit__(None, None, None)
    emitter.emit("after")
    assert sink.records[-1]["span"] is None


def test_null_emitter_is_disabled_and_inert():
    assert NULL_EMITTER.enabled is False
    assert NULL_EMITTER.emit("anything", {"x": 1}) is None
    with NULL_EMITTER.span("anything"):
        pass
    # The no-op span is shared, not allocated per call.
    assert NULL_EMITTER.span("a") is NULL_EMITTER.span("b")


def test_legacy_recorder_keeps_only_legacy_events():
    recorder = LegacyRecorder()
    assert recorder.enabled is False
    recorder.emit("synthesized", {"candidate_size": 3}, legacy=True)
    recorder.emit("pool-built", {"entries": 9}, cat="cache")
    with recorder.span("iteration"):
        recorder.emit("success", None, legacy=True)
    assert recorder.events == [
        {"event": "synthesized", "candidate_size": 3},
        {"event": "success"},
    ]


def test_legacy_entry_layout_matches_seed_log():
    # `event` key first, detail keys after, insertion order preserved.
    entry = legacy_entry("visible-counterexample", {"operation": "add", "added": ["x"]})
    assert list(entry) == ["event", "operation", "added"]
    assert legacy_entry("success", None) == {"event": "success"}
