"""Unit tests for the `repro trace` analyzer (`repro.obs.analyze`)."""

import json

from repro.obs.analyze import (
    cache_tables,
    chrome_trace,
    main,
    phase_breakdown,
    slowest_spans,
    validate_trace,
)
from repro.obs.events import SCHEMA_VERSION, CountingClock, Emitter
from repro.obs.sinks import InMemorySink, JsonlTraceSink


def sample_trace(stats=None):
    """A small but structurally complete single-run trace."""
    sink = InMemorySink()
    emitter = Emitter(sinks=[sink], run="bench/hanoi", clock=CountingClock())
    emitter.emit("run-start", {"benchmark": "bench", "mode": "hanoi"}, cat="run")
    with emitter.span("run", cat="run"):
        with emitter.span("iteration", {"index": 1}):
            with emitter.span("synthesis"):
                emitter.emit("pool-cache", {"hits": 3, "misses": 1}, cat="cache")
            with emitter.span("sufficiency-check"):
                emitter.emit("eval-cache", {"hits": 10, "misses": 2}, cat="cache")
        with emitter.span("iteration", {"index": 2}):
            with emitter.span("synthesis"):
                emitter.emit("pool-cache", {"hits": 4, "misses": 0}, cat="cache")
    emitter.emit(
        "run-end",
        {"status": "success", "iterations": 2,
         "stats": stats if stats is not None else
         {"eval_cache_hits": 10, "eval_cache_misses": 2,
          "pool_cache_hits": 7, "pool_cache_misses": 1}},
        cat="run")
    return sink.records


def test_validate_accepts_well_formed_trace():
    assert validate_trace(sample_trace()) == []


def test_validate_flags_structural_problems():
    assert validate_trace([]) == ["trace contains no records"]

    records = [dict(r) for r in sample_trace()]
    records[0]["v"] = 99
    problems = validate_trace(records)
    assert any("schema version" in p for p in problems)

    records = [dict(r) for r in sample_trace()]
    records[3]["seq"] = 1  # duplicate of an earlier sequence number
    assert any("not increasing" in p for p in validate_trace(records))

    # Dropping a span-end leaves a dangling span.
    records = [r for r in sample_trace() if not (
        r["kind"] == "span-end" and r["name"] == "run")]
    assert any("never ended" in p for p in validate_trace(records))


def test_validate_exempts_stream_records_from_seq_checks():
    records = [dict(r) for r in sample_trace()]
    # Heartbeats carry their own counter and share the run label; they must
    # not trip the per-run monotonicity check.
    records.append({"v": SCHEMA_VERSION, "seq": 1, "ts": 0.0,
                    "run": "bench/hanoi", "kind": "event", "cat": "stream",
                    "name": "heartbeat", "span": None})
    assert validate_trace(records) == []


def test_validate_scopes_merged_parallel_traces_by_task_label():
    # Two workers' records interleave in the parent's trace file; the task
    # label stamped by the QueueSink is the ordering scope.
    merged = []
    for label in ("a/hanoi", "b/hanoi"):
        for record in sample_trace():
            tagged = dict(record)
            tagged["task"] = label
            merged.append(tagged)
    merged.sort(key=lambda r: r["seq"])  # fully interleave
    assert validate_trace(merged) == []


def test_phase_breakdown_aggregates_span_durations():
    rows = {row[0]: row for row in phase_breakdown(sample_trace())}
    assert rows["iteration"][1] == 2  # two iteration spans
    assert rows["synthesis"][1] == 2
    assert rows["sufficiency-check"][1] == 1
    # Longest total first; `run` encloses everything.
    assert phase_breakdown(sample_trace())[0][0] == "run"
    for name, count, total, mean, longest in rows.values():
        assert total >= longest >= mean > 0


def test_cache_tables_cross_check_passes_on_consistent_trace():
    rows, mismatches = cache_tables(sample_trace())
    assert mismatches == []
    by_layer = {row[1]: row for row in rows}
    assert by_layer["eval-cache"][2:] == [10, 2, "83.3%"]
    assert by_layer["pool-cache"][2:] == [7, 1, "87.5%"]


def test_cache_tables_cross_check_flags_stats_divergence():
    records = sample_trace(stats={"eval_cache_hits": 11, "eval_cache_misses": 2,
                                  "pool_cache_hits": 7, "pool_cache_misses": 5})
    _, mismatches = cache_tables(records)
    assert len(mismatches) == 2
    assert any("eval-cache hits from events (10) != stats.eval_cache_hits (11)" in m
               for m in mismatches)
    assert any("pool-cache misses" in m for m in mismatches)


def test_slowest_spans_orders_by_duration():
    rows = slowest_spans(sample_trace(), top=3)
    assert len(rows) == 3
    durations = [row[3] for row in rows]
    assert durations == sorted(durations, reverse=True)
    assert rows[0][1] == "run"


def test_chrome_trace_export_shape():
    payload = chrome_trace(sample_trace())
    events = payload["traceEvents"]
    assert payload["displayTimeUnit"] == "ms"

    metadata = [e for e in events if e["ph"] == "M"]
    assert [m["args"]["name"] for m in metadata] == ["bench/hanoi"]

    slices = [e for e in events if e["ph"] == "X"]
    assert {s["name"] for s in slices} == {
        "run", "iteration", "synthesis", "sufficiency-check"}
    first_iteration = next(s for s in slices
                           if s["name"] == "iteration" and s.get("args"))
    assert first_iteration["args"]["index"] in (1, 2)
    for s in slices:
        assert s["dur"] > 0 and s["ts"] >= 0

    instants = [e for e in events if e["ph"] == "i"]
    assert {i["name"] for i in instants} >= {"run-start", "run-end",
                                             "eval-cache", "pool-cache"}
    # The whole export must be valid JSON.
    json.loads(json.dumps(payload))


def test_main_reports_and_exports(tmp_path, capsys):
    trace_path = tmp_path / "trace.jsonl"
    with JsonlTraceSink(str(trace_path)) as sink:
        for record in sample_trace():
            sink.handle(record)
    chrome_path = tmp_path / "chrome.json"

    assert main([str(trace_path), "--top", "3", "--chrome", str(chrome_path)]) == 0
    out = capsys.readouterr().out
    assert "Per-phase time breakdown" in out
    assert "Cache hit rates" in out
    assert "Slowest 3 span(s)" in out
    assert "CROSS-CHECK" not in out
    with open(chrome_path, encoding="utf-8") as handle:
        assert json.load(handle)["traceEvents"]


def test_main_exits_nonzero_on_cross_check_mismatch(tmp_path, capsys):
    trace_path = tmp_path / "trace.jsonl"
    with JsonlTraceSink(str(trace_path)) as sink:
        for record in sample_trace(stats={"eval_cache_hits": 999}):
            sink.handle(record)
    assert main([str(trace_path)]) == 1
    assert "CROSS-CHECK FAILURES" in capsys.readouterr().out
