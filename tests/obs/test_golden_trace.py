"""End-to-end trace guarantees on the motivating ListSet benchmark.

Two contracts are pinned here:

* **Legacy byte-compatibility** — a traced run's ``InferenceResult.events``
  is byte-identical to an untraced run's, so every existing consumer
  (Figure 5 rendering, the fuzzer's stored rows) is unaffected by tracing.
* **Trace determinism** — under the injectable :class:`CountingClock` the
  whole JSONL trace is byte-identical across repeated runs *and* across
  ``PYTHONHASHSEED`` values (nothing in a record depends on wall time, pids,
  or set/dict iteration order).
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.core.hanoi import HanoiInference
from repro.obs.analyze import validate_trace
from repro.obs.events import CountingClock, Emitter
from repro.obs.sinks import InMemorySink, JsonlTraceSink, read_trace
from repro.suite.registry import get_benchmark

LIST_SET_NAME = "/coq/unique-list-::-set"

#: Source of one traced ListSet run, also executed as a subprocess under
#: varying hash seeds.  Keep it in sync with `traced_run` below.
RUN_SCRIPT = textwrap.dedent("""
    import sys
    from repro.core.config import FAST_VERIFIER_BOUNDS, HanoiConfig
    from repro.core.hanoi import HanoiInference
    from repro.obs.events import CountingClock, Emitter
    from repro.obs.sinks import JsonlTraceSink
    from repro.suite.registry import get_benchmark

    config = HanoiConfig(verifier_bounds=FAST_VERIFIER_BOUNDS, timeout_seconds=90)
    with JsonlTraceSink(sys.argv[2]) as sink:
        emitter = Emitter(sinks=[sink], run="listset/hanoi", clock=CountingClock())
        HanoiInference(get_benchmark(sys.argv[1]), config,
                       emitter=emitter).infer()
""")


def traced_run(fast_config, path):
    with JsonlTraceSink(str(path)) as sink:
        emitter = Emitter(sinks=[sink], run="listset/hanoi",
                          clock=CountingClock())
        return HanoiInference(get_benchmark(LIST_SET_NAME), fast_config,
                              emitter=emitter).infer()


def test_traced_events_byte_compatible_with_untraced(fast_config):
    untraced = HanoiInference(get_benchmark(LIST_SET_NAME), fast_config).infer()
    sink = InMemorySink()
    emitter = Emitter(sinks=[sink], run="listset/hanoi", clock=CountingClock())
    traced = HanoiInference(get_benchmark(LIST_SET_NAME), fast_config,
                            emitter=emitter).infer()

    assert traced.succeeded and untraced.succeeded
    assert json.dumps(traced.events) == json.dumps(untraced.events)
    # The trace itself is a strict superset of the legacy log.
    assert len(sink.records) > len(traced.events)


def test_trace_is_well_formed_and_spans_nest(fast_config, tmp_path):
    result = traced_run(fast_config, tmp_path / "trace.jsonl")
    records = read_trace(str(tmp_path / "trace.jsonl"))

    assert result.succeeded
    assert validate_trace(records) == []
    names = {r["name"] for r in records}
    assert {"run", "run-start", "run-end", "iteration", "synthesis"} <= names
    assert {"sufficiency-check", "inductiveness-check"} & names
    # Every iteration span is enclosed by the run span.
    run_id = next(r["id"] for r in records
                  if r["kind"] == "span-start" and r["name"] == "run")
    for record in records:
        if record["kind"] == "span-start" and record["name"] == "iteration":
            assert record["span"] == run_id
    # run-end carries the integer stats counters (and never the timers,
    # which would break determinism).
    run_end = next(r for r in records if r["name"] == "run-end")
    assert run_end["data"]["iterations"] == result.iterations
    stats = run_end["data"]["stats"]
    assert stats["synthesis_calls"] == result.stats.synthesis_calls
    assert not any(key.endswith("_time") for key in stats)


def test_golden_trace_byte_identical_across_runs(fast_config, tmp_path):
    first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    traced_run(fast_config, first)
    traced_run(fast_config, second)
    assert first.read_bytes() == second.read_bytes()


@pytest.mark.parametrize("hash_seed", ["0", "1", "42"])
def test_golden_trace_byte_identical_across_hash_seeds(
        fast_config, tmp_path, hash_seed):
    # The in-process reference run (this interpreter's own hash seed) ...
    reference = tmp_path / "reference.jsonl"
    traced_run(fast_config, reference)

    # ... must match a subprocess pinned to an explicit PYTHONHASHSEED.
    out = tmp_path / f"seed-{hash_seed}.jsonl"
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    subprocess.run([sys.executable, "-c", RUN_SCRIPT, LIST_SET_NAME, str(out)],
                   env=env, check=True, timeout=300)

    assert out.read_bytes() == reference.read_bytes()
