"""The curated example modules: every one loads, infers, and matches its oracle.

``examples/modules`` is the user-facing showcase of the ``.hanoi`` format;
each file carries an ``expected invariant`` block.  For the data structures
added alongside the fuzzing harness (ring buffer, LRU cache, union-find)
inference must succeed outright and the inferred invariant must *imply* the
expected one on all bounded values - the same implication check the
differential fuzzer applies to generated modules.
"""

import os

import pytest

from repro.core.predicate import Predicate
from repro.core.result import Status
from repro.experiments.runner import run_module
from repro.spec import load_module_file
from repro.verify.result import Valid
from repro.verify.tester import Verifier

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "modules")

#: file -> fragment the inferred invariant must mention (the enabling helper).
CURATED = {
    "ring-buffer.hanoi": "shape_ok",
    "lru-cache.hanoi": "wf",
    "union-find.hanoi": "in_range",
}


@pytest.mark.parametrize("filename", sorted(CURATED))
def test_curated_example_infers_its_invariant(filename, fast_config):
    definition = load_module_file(os.path.join(EXAMPLES_DIR, filename))
    result = run_module(definition, mode="hanoi", config=fast_config)
    assert result.status == Status.SUCCESS, result.message
    rendered = result.render_invariant()
    assert CURATED[filename] in rendered

    # The inferred invariant implies the file's expected invariant on every
    # value within the bounded tester's reach.
    instance = definition.instantiate()
    oracle = Predicate.from_source(definition.expected_invariant,
                                   instance.program)
    inferred = Predicate.from_source(rendered, instance.program)
    verifier = Verifier(instance, bounds=fast_config.verifier_bounds)
    verdict = verifier.check_predicate(lambda v: (not inferred(v)) or oracle(v))
    assert isinstance(verdict, Valid), (
        f"{filename}: inferred invariant does not imply the expected one "
        f"(witness: {verdict.witnesses[0]})")


@pytest.mark.parametrize("filename", sorted(CURATED))
def test_curated_example_oracle_is_sufficient_and_inductive(filename,
                                                            fast_config):
    from repro.inductive.relation import ConditionalInductivenessChecker

    definition = load_module_file(os.path.join(EXAMPLES_DIR, filename))
    instance = definition.instantiate()
    oracle = Predicate.from_source(definition.expected_invariant,
                                   instance.program)
    verifier = Verifier(instance, bounds=fast_config.verifier_bounds)
    assert isinstance(verifier.check_sufficiency(oracle), Valid)
    checker = ConditionalInductivenessChecker(
        instance, bounds=fast_config.verifier_bounds)
    assert isinstance(checker.check(oracle, oracle), Valid)
