"""End-to-end integration tests: Hanoi on the fast benchmark subset.

Beyond "did it terminate with an invariant", these tests check the paper's
correctness claim (Section 5.3: all inferred invariants were correct) in an
executable form: every inferred invariant must

* be sufficient for the benchmark's specification (re-checked),
* be fully inductive (re-checked),
* accept every value actually constructed by random sequences of module
  operations (constructible values must satisfy any representation invariant).
"""

import random

import pytest

from repro.core.config import FAST_VERIFIER_BOUNDS, HanoiConfig
from repro.core.hanoi import HanoiInference
from repro.enumeration.values import ValueEnumerator
from repro.inductive.relation import ConditionalInductivenessChecker
from repro.lang.types import TArrow, mentions_abstract
from repro.suite.registry import get_benchmark
from repro.verify.result import Valid
from repro.verify.tester import Verifier

CONFIG = HanoiConfig(verifier_bounds=FAST_VERIFIER_BOUNDS, timeout_seconds=90)

#: The subset exercised end-to-end in CI (a strict subset of FAST_BENCHMARKS
#: to keep the integration stage under a couple of minutes).
SUBSET = [
    "/coq/unique-list-::-set",
    "/coq/sorted-list-::-set",
    "/coq/maxfirst-list-::-heap",
    "/other/cache",
    "/other/listlike-tree",
    "/other/nat-nat-option-::-range",
    "/other/sized-list",
    "/other/stutter-list",
    "/vfa/assoc-list-::-table",
]


def constructible_values(instance, count=60, seed=7, max_steps=5):
    """Sample values reachable by random sequences of module operations."""
    rng = random.Random(seed)
    enumerator = ValueEnumerator(instance.program.types)
    reachable = []
    operations = list(instance.operations)
    seeds = [instance.operation_value(op) for op in operations if not op.argument_types]
    reachable.extend(seeds)
    for _ in range(count):
        if not reachable:
            break
        value = rng.choice(reachable)
        for _ in range(rng.randint(1, max_steps)):
            op = rng.choice(operations)
            if not op.produces_abstract or not op.argument_types:
                continue
            if any(isinstance(t, TArrow) for t in op.argument_types):
                continue
            args = []
            feasible = True
            for arg_type in op.argument_types:
                if mentions_abstract(arg_type):
                    args.append(rng.choice(reachable))
                else:
                    pool = enumerator.smallest(arg_type, 6)
                    if not pool:
                        feasible = False
                        break
                    args.append(rng.choice(pool))
            if not feasible:
                continue
            value = instance.program.apply(instance.operation_value(op), *args)
            reachable.append(value)
    return reachable


@pytest.fixture(scope="module")
def results():
    out = {}
    for name in SUBSET:
        out[name] = HanoiInference(get_benchmark(name), config=CONFIG).infer()
    return out


@pytest.mark.parametrize("name", SUBSET)
def test_inference_succeeds(results, name):
    result = results[name]
    assert result.succeeded, f"{name}: {result.status} ({result.message})"
    assert result.invariant_size is not None and result.invariant_size >= 2


@pytest.mark.parametrize("name", SUBSET)
def test_inferred_invariant_is_sufficient_and_inductive(results, name):
    result = results[name]
    instance = get_benchmark(name).instantiate()
    verifier = Verifier(instance, bounds=FAST_VERIFIER_BOUNDS)
    checker = ConditionalInductivenessChecker(instance, bounds=FAST_VERIFIER_BOUNDS)
    invariant = result.invariant
    assert isinstance(verifier.check_sufficiency(invariant), Valid)
    assert isinstance(checker.check(invariant, invariant), Valid)


@pytest.mark.parametrize("name", SUBSET)
def test_inferred_invariant_accepts_constructible_values(results, name):
    result = results[name]
    instance = get_benchmark(name).instantiate()
    invariant = result.invariant
    for value in constructible_values(instance):
        assert invariant(value), f"{name}: constructible value {value} rejected by the invariant"


def test_statistics_shape_matches_paper_narrative(results):
    """Section 5.4: for the terminating benchmarks most time is spent in
    verification, and synthesis time stays small."""
    verification = sum(r.stats.verification_time for r in results.values())
    synthesis = sum(r.stats.synthesis_time for r in results.values())
    assert verification > synthesis
