"""Cache-transparency matrix: the 2x2 eval x pool grid changes nothing.

Both cross-iteration caches (verification evaluation, synthesis term-pool)
advertise "identical outcomes, less work".  This test runs representative
modules through Hanoi inference under all four cells of the cache matrix and
requires byte-identical outcome fingerprints (status, invariant, size,
iteration count, message - timing and counters excluded).

The default selection covers one built-in benchmark plus the curated example
modules; set ``CACHE_MATRIX_FULL=1`` to sweep every fast built-in (the
nightly CI job does).
"""

import os

import pytest

from repro.experiments.runner import run_module
from repro.gen.diff import CACHE_VARIANTS, outcome_fingerprint, variant_config
from repro.spec import load_module_file
from repro.suite.registry import fast_benchmarks, get_benchmark

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "modules")

EXAMPLE_FILES = [
    "bounded-stack.hanoi",
    "parity-counter.hanoi",
    "ring-buffer.hanoi",
    "lru-cache.hanoi",
    "union-find.hanoi",
]

BUILTINS = ["/coq/unique-list-::-set"]
if os.environ.get("CACHE_MATRIX_FULL"):
    BUILTINS = [definition.name for definition in fast_benchmarks()]


def _assert_matrix_agrees(definition, fast_config):
    fingerprints = {}
    for variant, _ in CACHE_VARIANTS:
        result = run_module(definition, mode="hanoi",
                            config=variant_config(fast_config, variant))
        fingerprints[variant] = outcome_fingerprint(result)
    reference = fingerprints["ec+pc"]
    assert reference["status"] == "success", (
        f"{definition.name}: {reference['message']}")
    for variant, fingerprint in fingerprints.items():
        assert fingerprint == reference, (
            f"{definition.name}: variant {variant} diverged:\n"
            f"  {variant}: {fingerprint}\n  ec+pc: {reference}")


@pytest.mark.parametrize("filename", EXAMPLE_FILES)
def test_example_outcomes_are_cache_independent(filename, fast_config):
    definition = load_module_file(os.path.join(EXAMPLES_DIR, filename))
    _assert_matrix_agrees(definition, fast_config)


@pytest.mark.parametrize("name", BUILTINS)
def test_builtin_outcomes_are_cache_independent(name, fast_config):
    _assert_matrix_agrees(get_benchmark(name), fast_config)
