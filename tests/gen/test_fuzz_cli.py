"""End-to-end drives of ``python -m repro fuzz``.

Each test runs the CLI in a subprocess: pack registration is per-process
global state, and the fault-injection scenario needs its environment variable
scoped to one run.  The fault test is the acceptance scenario from the issue:
an injected mismatch must fail the run *and* leave a minimal ``.hanoi``
reproducer behind.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.gen.diff import FAULT_ENV_VAR
from repro.gen.modgen import generate_corpus
from repro.spec import load_module_file

pytestmark = pytest.mark.fuzz

_REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _run_fuzz(*args, env_extra=None, timeout=600):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO, "src")
    env.pop(FAULT_ENV_VAR, None)
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-m", "repro", "fuzz", *args],
        capture_output=True, text=True, env=env, cwd=_REPO, timeout=timeout)


def test_small_fuzz_run_passes(tmp_path):
    out = str(tmp_path / "fuzz-out")
    proc = _run_fuzz("--seed", "0", "--count", "2", "--modes", "hanoi",
                     "--jobs", "1", "--timeout", "90", "--out", out)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "differential fuzz ok" in proc.stdout
    corpus = sorted(os.listdir(os.path.join(out, "corpus")))
    assert len(corpus) == 2 and all(f.endswith(".hanoi") for f in corpus)
    with open(os.path.join(out, "results.jsonl"), encoding="utf-8") as handle:
        rows = [json.loads(line) for line in handle if line.strip()]
    # 2 modules x 1 mode x 4 cache variants.
    assert len(rows) == 8
    assert {row["variant"] for row in rows} == {
        "ec+pc", "ec-only", "pc-only", "no-caches"}

    # A --resume re-run finds every cell complete and still reports ok.
    again = _run_fuzz("--seed", "0", "--count", "2", "--modes", "hanoi",
                      "--jobs", "1", "--timeout", "90", "--out", out,
                      "--resume")
    assert again.returncode == 0, again.stdout + again.stderr
    assert "differential fuzz ok" in again.stdout


def test_injected_fault_is_shrunk_to_a_reproducer(tmp_path):
    out = str(tmp_path / "fuzz-out")
    corpus = generate_corpus(0, 1)
    operation = corpus[0].definition.operations[0].name

    proc = _run_fuzz("--seed", "0", "--count", "1", "--modes", "hanoi",
                     "--jobs", "1", "--timeout", "90", "--out", out,
                     "--no-oracle",
                     env_extra={FAULT_ENV_VAR: operation})
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "cache variants disagree" in proc.stdout

    reproducers = os.path.join(out, "reproducers")
    files = sorted(os.listdir(reproducers))
    assert len(files) == 1
    minimal = load_module_file(os.path.join(reproducers, files[0]))
    # The faulted operation is exactly what the shrinker must keep.
    assert any(op.name == operation for op in minimal.operations)
    assert len(minimal.operations) <= len(corpus[0].definition.operations)
    minimal.instantiate()


def test_no_shrink_skips_reproducers(tmp_path):
    out = str(tmp_path / "fuzz-out")
    corpus = generate_corpus(0, 1)
    operation = corpus[0].definition.operations[0].name
    proc = _run_fuzz("--seed", "0", "--count", "1", "--modes", "hanoi",
                     "--jobs", "1", "--timeout", "90", "--out", out,
                     "--no-oracle", "--no-shrink",
                     env_extra={FAULT_ENV_VAR: operation})
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert not os.path.isdir(os.path.join(out, "reproducers"))


def test_unknown_mode_is_a_diagnostic(tmp_path):
    proc = _run_fuzz("--modes", "frobnicate", "--count", "1",
                     "--out", str(tmp_path / "fuzz-out"))
    assert proc.returncode != 0
    assert "frobnicate" in proc.stderr
    assert "Traceback" not in proc.stderr
