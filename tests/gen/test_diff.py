"""The differential harness itself: variant matrix, fingerprints, faults.

``repro.gen.diff`` promises that a clean run of a generated module produces
an ``ok`` report, that any disagreement between cache variants (including a
missing variant) surfaces as a mismatch, and that the test-only fault hooks
corrupt exactly the cell they claim to.  The in-process and stored-result
paths are both covered - the CLI uses the latter.
"""

import os

import pytest

from repro.core.result import InferenceResult, Status, StoredInvariant
from repro.core.stats import InferenceStats
from repro.gen.diff import (
    CACHE_VARIANTS,
    FAULT_ENV_VAR,
    VARIANT_NAMES,
    compare_stored,
    fuzz_corpus,
    fuzz_module,
    outcome_fingerprint,
    variant_config,
)
from repro.gen.modgen import generate_corpus, generate_module

pytestmark = pytest.mark.fuzz


@pytest.fixture(scope="module")
def module_zero():
    return generate_module(0)


def test_variant_config_toggles_both_caches(fast_config):
    for name, (eval_on, pool_on) in CACHE_VARIANTS:
        applied = variant_config(fast_config, name)
        assert applied.evaluation_caching is eval_on
        assert applied.synthesis_evaluation_caching is pool_on


def test_variant_config_rejects_unknown_tag(fast_config):
    with pytest.raises(KeyError):
        variant_config(fast_config, "turbo")


def test_fingerprint_ignores_stats():
    """Two runs differing only in timing/cache counters fingerprint equal."""
    def result(stats):
        return InferenceResult(
            benchmark="/x", mode="hanoi", status=Status.SUCCESS,
            invariant=StoredInvariant(size=3, rendered="let inv x = valid x"),
            stats=stats, iterations=4)
    fast = InferenceStats.from_dict({"wall_seconds": 0.1, "eval_cache_hits": 900})
    slow = InferenceStats.from_dict({"wall_seconds": 9.9, "eval_cache_hits": 0})
    assert outcome_fingerprint(result(fast)) == outcome_fingerprint(result(slow))


def test_clean_generated_module_fuzzes_ok(fast_config, module_zero):
    report = fuzz_module(module_zero.definition, modes=("hanoi",),
                         config=fast_config)
    assert report.ok, report.summary()
    assert report.runs == len(VARIANT_NAMES)
    assert report.benchmarks == [module_zero.name]
    assert "ok" in report.summary()


def test_fault_hook_surfaces_as_mismatch(fast_config, module_zero):
    def corrupt(benchmark, mode, variant, fingerprint):
        if variant == "no-caches":
            return dict(fingerprint, status="fault-injected")
        return fingerprint

    report = fuzz_module(module_zero.definition, modes=("hanoi",),
                         config=fast_config, require_success=(),
                         check_oracle=False, fault=corrupt)
    assert not report.ok
    assert len(report.mismatches) == 1
    described = report.mismatches[0].describe()
    assert "no-caches" in described and "fault-injected" in described


def test_env_fault_hook_targets_named_operation(fast_config, module_zero,
                                                monkeypatch):
    operation = module_zero.definition.operations[0].name
    monkeypatch.setenv(FAULT_ENV_VAR, operation)
    report = fuzz_module(module_zero.definition, modes=("hanoi",),
                         config=fast_config, require_success=(),
                         check_oracle=False)
    assert len(report.mismatches) == 1
    monkeypatch.setenv(FAULT_ENV_VAR, "no_module_defines_this")
    report = fuzz_module(module_zero.definition, modes=("hanoi",),
                         config=fast_config, require_success=(),
                         check_oracle=False)
    assert report.ok


def test_fuzz_corpus_accepts_generated_wrappers(fast_config, module_zero):
    seen = []
    report = fuzz_corpus([module_zero], modes=("hanoi",), config=fast_config,
                         progress=lambda name, rep: seen.append(name))
    assert report.ok
    assert seen == [module_zero.name]


def _stored(benchmark, variant, status=Status.SUCCESS, invariant="valid x"):
    return InferenceResult(
        benchmark=benchmark, mode="hanoi", status=status,
        invariant=StoredInvariant(size=2, rendered=invariant),
        stats=InferenceStats.from_dict({}), iterations=1, variant=variant)


def test_compare_stored_passes_on_agreement(module_zero):
    rows = [_stored(module_zero.name, v) for v in VARIANT_NAMES]
    report = compare_stored(rows, {module_zero.name: module_zero.definition},
                            modes=("hanoi",), require_success=(),
                            check_oracle=False)
    assert report.ok
    assert report.runs == len(VARIANT_NAMES)


def test_compare_stored_flags_divergent_variant(module_zero):
    rows = [_stored(module_zero.name, v) for v in VARIANT_NAMES[:-1]]
    rows.append(_stored(module_zero.name, VARIANT_NAMES[-1],
                        invariant="some_other x"))
    report = compare_stored(rows, {module_zero.name: module_zero.definition},
                            modes=("hanoi",), require_success=(),
                            check_oracle=False)
    assert [m.mode for m in report.mismatches] == ["hanoi"]


def test_compare_stored_flags_missing_variant(module_zero):
    rows = [_stored(module_zero.name, v) for v in VARIANT_NAMES[:-1]]
    report = compare_stored(rows, {module_zero.name: module_zero.definition},
                            modes=("hanoi",), require_success=(),
                            check_oracle=False)
    assert len(report.mismatches) == 1
    assert "(missing)" in report.mismatches[0].describe()


@pytest.mark.skipif(not os.environ.get("FUZZ_FULL"),
                    reason="deep in-process sweep; set FUZZ_FULL=1 (nightly CI)")
def test_deep_corpus_differential_sweep(fast_config):
    report = fuzz_corpus(generate_corpus(1, 8), modes=("hanoi", "oneshot"),
                         config=fast_config)
    assert report.ok, report.summary() + "".join(
        "\n" + m.describe() for m in report.mismatches) + "".join(
        "\n" + f.describe() for f in report.oracle_failures)


def test_compare_stored_requires_success_when_asked(module_zero):
    rows = [_stored(module_zero.name, v, status=Status.SYNTHESIS_FAILURE,
                    invariant="(none)") for v in VARIANT_NAMES]
    report = compare_stored(rows, {module_zero.name: module_zero.definition},
                            modes=("hanoi",), require_success=("hanoi",),
                            check_oracle=False)
    assert not report.mismatches  # the variants *agree* - on failing
    assert len(report.oracle_failures) == 1
    assert "expected success" in report.oracle_failures[0].describe()
