"""Generator properties: validity, losslessness, coverage, determinism.

The generator's contract (``repro.gen.modgen``) is that every module it mints
is a well-formed ``.hanoi`` definition whose text survives the exporter/loader
cycle *losslessly* - the acceptance property is checked here across a hundred
and twenty seeds, alongside family coverage and the seed-determinism facts the
differential fuzzer relies on.
"""

import os

import pytest

from repro.gen.modgen import (
    FAMILIES,
    corpus_digest,
    generate_corpus,
    generate_module,
    write_corpus,
)
from repro.spec import load_module_file, load_module_text, render_module

#: The acceptance criterion asks for the round-trip property across >= 100
#: seeds; a few extra make family coverage robust to weight tweaks.  The
#: nightly CI job sets FUZZ_FULL=1 to widen the band.
PROPERTY_SEEDS = range(500 if os.environ.get("FUZZ_FULL") else 120)

pytestmark = pytest.mark.fuzz


@pytest.fixture(scope="module")
def property_modules():
    return [generate_module(seed) for seed in PROPERTY_SEEDS]


def test_every_seed_loads_and_instantiates(property_modules):
    for module in property_modules:
        instance = module.definition.instantiate()
        assert instance.program is not None
        assert module.definition.name == module.name
        assert module.definition.expected_invariant, module.name


def test_export_load_round_trip_is_lossless(property_modules):
    """render -> load preserves the full interface for every generated seed."""
    for module in property_modules:
        original = module.definition
        reloaded = load_module_text(render_module(original), path=module.name)
        assert reloaded.name == original.name
        assert reloaded.group == original.group
        assert reloaded.description == original.description
        assert reloaded.concrete_type == original.concrete_type
        assert reloaded.operations == original.operations
        assert reloaded.spec_name == original.spec_name
        assert reloaded.spec_signature == original.spec_signature
        assert reloaded.synthesis_components == original.synthesis_components
        assert reloaded.helper_functions == original.helper_functions
        assert reloaded.expected_invariant == original.expected_invariant
        reloaded.instantiate()


def test_render_reaches_a_fixed_point(property_modules):
    """render(load(render(d))) == render(d): no drift, no header accumulation."""
    for module in property_modules:
        once = render_module(module.definition)
        twice = render_module(load_module_text(once, path=module.name))
        assert once == twice, module.name


def test_all_families_are_reachable(property_modules):
    seen = {module.family for module in property_modules}
    assert seen == set(FAMILIES), f"families never generated: {set(FAMILIES) - seen}"


def test_same_seed_same_text():
    for seed in (0, 7, 99):
        assert generate_module(seed).text == generate_module(seed).text


def test_corpus_is_prefix_stable():
    """Module *i* depends only on ``(seed, i)``: prefixes agree across counts."""
    short = generate_corpus(5, 4)
    long = generate_corpus(5, 8)
    assert [m.text for m in short] == [m.text for m in long[:4]]
    assert corpus_digest(short) == corpus_digest(long[:4])


def test_corpus_names_are_distinct():
    corpus = generate_corpus(0, 40)
    names = [m.name for m in corpus]
    assert len(names) == len(set(names))


def test_write_corpus_files_reload(tmp_path):
    corpus = generate_corpus(3, 5)
    paths = write_corpus(corpus, str(tmp_path))
    assert len(paths) == 5
    for module, path in zip(corpus, paths):
        assert os.path.basename(path) == module.filename
        loaded = load_module_file(path)
        assert loaded.name == module.name
        assert loaded.expected_invariant == module.definition.expected_invariant
