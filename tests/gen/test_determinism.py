"""Hash-seed independence: identical corpora under any ``PYTHONHASHSEED``.

The fuzzer's resume and cross-run comparison logic assumes a seed names one
corpus forever.  Python's string hashing is randomized per process, so any
code path that iterates a set or hash-ordered dict would break that silently;
these tests run the generator in subprocesses pinned to three different hash
seeds and require byte-identical corpora.
"""

import os
import subprocess
import sys

import pytest

pytestmark = pytest.mark.fuzz

_REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
_SNIPPET = (
    "from repro.gen.modgen import corpus_digest, generate_corpus\n"
    "print(corpus_digest(generate_corpus(11, 15)))\n"
)


def _digest_under_hashseed(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = os.path.join(_REPO, "src")
    proc = subprocess.run(
        [sys.executable, "-c", _SNIPPET],
        capture_output=True, text=True, env=env, cwd=_REPO, check=True)
    return proc.stdout.strip()


def test_corpus_digest_is_hashseed_independent():
    digests = {seed: _digest_under_hashseed(seed) for seed in ("0", "1", "2")}
    assert len(set(digests.values())) == 1, digests


def test_rendered_text_is_hashseed_independent():
    snippet = (
        "from repro.gen.modgen import generate_module\n"
        "from repro.spec import render_module\n"
        "import sys\n"
        "sys.stdout.write(render_module(generate_module(42).definition))\n"
    )
    outputs = set()
    for hashseed in ("0", "1", "2"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = os.path.join(_REPO, "src")
        proc = subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True, text=True, env=env, cwd=_REPO, check=True)
        outputs.add(proc.stdout)
    assert len(outputs) == 1
