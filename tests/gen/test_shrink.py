"""Shrinker behaviour: minimal, revalidated, reloadable reproducers.

``repro.gen.shrink`` is deliberately oracle-agnostic: it minimizes against
any ``still_fails`` predicate, re-validating every candidate through the
exporter/loader cycle.  A cheap structural predicate keeps these tests fast
while exercising the same reduction machinery the fuzz CLI drives with real
differential mismatches.
"""

import os

import pytest

from repro.gen.modgen import generate_module
from repro.gen.shrink import shrink_module, write_reproducer
from repro.spec import load_module_file, load_module_text, render_module

pytestmark = pytest.mark.fuzz


def _module_with_many_operations():
    """The first generated module with at least four operations."""
    for seed in range(100):
        module = generate_module(seed)
        if len(module.definition.operations) >= 4:
            return module.definition
    raise AssertionError("no generated module with >= 4 operations in range")


def test_shrinks_to_the_single_blamed_operation():
    definition = _module_with_many_operations()
    target = definition.operations[1].name

    def still_fails(candidate):
        return any(op.name == target for op in candidate.operations)

    minimal = shrink_module(definition, still_fails)
    assert [op.name for op in minimal.operations] == [target]
    # Everything irrelevant to the predicate is gone too.
    assert minimal.expected_invariant is None
    assert not minimal.description
    # ... and the reproducer still satisfies the exporter/loader contract.
    reloaded = load_module_text(render_module(minimal), path=minimal.name)
    assert still_fails(reloaded)
    reloaded.instantiate()


def test_shrunk_module_drops_dead_declarations():
    definition = _module_with_many_operations()
    keep = definition.operations[0].name

    def still_fails(candidate):
        return any(op.name == keep for op in candidate.operations)

    minimal = shrink_module(definition, still_fails)
    rendered = render_module(minimal)
    # Operations the predicate does not depend on must not survive, even as
    # unreferenced source declarations.
    for op in definition.operations[1:]:
        if op.name != keep:
            assert f"operation {op.name}" not in rendered


def test_rejects_a_module_that_does_not_fail():
    definition = generate_module(0).definition
    with pytest.raises(ValueError):
        shrink_module(definition, lambda candidate: False)


def test_write_reproducer_round_trips(tmp_path):
    definition = generate_module(0).definition
    target = definition.operations[0].name
    minimal = shrink_module(
        definition,
        lambda candidate: any(op.name == target for op in candidate.operations))
    path = write_reproducer(minimal, str(tmp_path / "reproducers"))
    assert os.path.exists(path)
    loaded = load_module_file(path)
    assert loaded.name == definition.name
    assert any(op.name == target for op in loaded.operations)
