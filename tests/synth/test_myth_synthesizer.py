"""Unit tests for the Myth-like synthesizer, the term pools, the result cache,
and the fold-capable extension."""

import pytest

from repro.core.config import SynthesisBounds
from repro.core.stats import InferenceStats
from repro.lang.ast import EApp, ECtor, EMatch, EVar
from repro.lang.program import Program
from repro.lang.types import TData, arrow
from repro.lang.values import nat_of_int, v_list, VCtor, VTuple
from repro.suite.common import ABSTRACT, NAT, make_definition
from repro.suite.registry import get_benchmark
from repro.synth.base import SynthesisFailure
from repro.synth.bottomup import TermPool, TypedComponent
from repro.synth.cache import SynthesisResultCache
from repro.synth.examples import ExampleOracle
from repro.synth.folds import FoldSynthesizer
from repro.synth.myth import MythSynthesizer


def L(*ints):
    return v_list([nat_of_int(i) for i in ints])


@pytest.fixture(scope="module")
def listset():
    return get_benchmark("/coq/unique-list-::-set").instantiate()


@pytest.fixture(scope="module")
def synthesizer(listset):
    return MythSynthesizer(listset)


def test_no_examples_yields_trivial_candidate(synthesizer):
    candidates = synthesizer.synthesize([], [])
    assert candidates
    first = candidates[0]
    assert first(L()) and first(L(1, 1)) and first(L(2, 3))


def test_candidates_are_consistent_with_examples(synthesizer):
    positives = [L(), L(3), L(0)]
    negatives = [L(1, 1), L(0, 0)]
    for candidate in synthesizer.synthesize(positives, negatives):
        assert all(candidate(p) for p in positives)
        assert all(not candidate(n) for n in negatives)


def test_recursive_no_duplicates_invariant_is_reachable(synthesizer):
    """With enough examples the no-duplicates invariant (or an equivalent
    predicate) is synthesized: it must reject duplicate lists it never saw."""
    positives = [L(), L(0), L(1), L(2), L(1, 0), L(2, 1, 0)]
    negatives = [L(1, 1), L(0, 0), L(2, 2), L(0, 1, 0), L(2, 0, 2)]
    candidates = synthesizer.synthesize(positives, negatives)
    best = candidates[0]
    assert best(L(3, 2, 1))
    assert not best(L(3, 3))


def test_synthesis_failure_when_examples_overlap(synthesizer):
    with pytest.raises(SynthesisFailure):
        synthesizer.synthesize([L(1)], [L(1)])


def test_stats_record_synthesis_calls(listset):
    stats = InferenceStats()
    synthesizer = MythSynthesizer(listset, stats=stats)
    synthesizer.synthesize([L()], [L(1, 1)])
    assert stats.synthesis_calls == 1
    assert stats.synthesis_time > 0


def test_product_concrete_type_synthesis():
    """The sized-list benchmark has a product concrete type; the synthesizer
    destructures it with a tuple pattern."""
    definition = get_benchmark("/other/sized-list")
    instance = definition.instantiate()
    synthesizer = MythSynthesizer(instance)
    good = [VTuple((nat_of_int(0), L())), VTuple((nat_of_int(1), L(2))), VTuple((nat_of_int(2), L(1, 0)))]
    bad = [VTuple((nat_of_int(1), L())), VTuple((nat_of_int(0), L(1))),
           VTuple((nat_of_int(2), L(5))), VTuple((nat_of_int(1), L(1, 2)))]
    candidates = synthesizer.synthesize(good, bad)
    best = candidates[0]
    assert best(VTuple((nat_of_int(3), L(5, 4, 3))))
    assert not best(VTuple((nat_of_int(2), L(9))))


def test_term_pool_observational_equivalence(listset):
    """Two terms with the same behaviour on the examples are deduplicated."""
    program = listset.program
    components = [
        TypedComponent("nat_eq", program.global_type("nat_eq"), program.global_value("nat_eq")),
        TypedComponent("andb", program.global_type("andb"), program.global_value("andb")),
    ]
    environments = [{"x": nat_of_int(0)}, {"x": nat_of_int(1)}]
    pool = TermPool(program, components, [("x", TData("nat"))], environments, max_size=5)
    bool_entries = pool.entries(TData("bool"))
    vectors = [entry.vector for entry in bool_entries]
    assert len(vectors) == len(set(vectors)), "behaviourally equal terms must be merged"


def test_term_pool_respects_restrictions(listset):
    program = listset.program
    lookup = TypedComponent(
        "lookup", program.global_type("lookup"), program.global_value("lookup"),
        argument_restrictions=(frozenset({"tl"}), None),
    )
    environments = [
        {"x": L(1, 1), "tl": L(1), "hd": nat_of_int(1)},
        {"x": L(0), "tl": L(), "hd": nat_of_int(0)},
    ]
    pool = TermPool(program, [lookup], [("x", TData("list")), ("tl", TData("list")), ("hd", TData("nat"))],
                    environments, max_size=5)
    exprs = [str(e.expr) for e in pool.entries(TData("bool"))]
    assert any("lookup tl" in text for text in exprs)
    assert not any("lookup x" in text for text in exprs)


def test_synthesis_result_cache_roundtrip(synthesizer):
    cache = SynthesisResultCache()
    candidates = synthesizer.synthesize([L()], [L(1, 1)])
    cache.store(candidates)
    assert len(cache) == len({c.decl for c in candidates})
    hit = cache.lookup([L()], [L(1, 1)])
    assert hit is not None
    # An inconsistent query yields no cached candidate.
    assert cache.lookup([L(1, 1)], [L()]) is None or not cache.lookup([L(1, 1)], [L()])(L())


def test_fold_synthesizer_installs_derived_components():
    definition = get_benchmark("/vfa/tree-::-priqueue*")
    instance = definition.instantiate()
    synthesizer = FoldSynthesizer(instance)
    assert instance.program.has_global("fold_max")
    assert "fold_max" in synthesizer.extra_components
    leaf = VCtor("Leaf")
    node = VCtor("Node", VTuple((leaf, nat_of_int(4), leaf)))
    fold_max = instance.program.evaluator.globals["fold_max"]
    assert instance.program.apply(fold_max, node) == nat_of_int(4)
    assert instance.program.apply(fold_max, leaf) == nat_of_int(0)


# -- nullary components (regression: they were silently dropped) ------------------

_BOUNDED_COUNTER_SOURCE = """
let five : nat = S (S (S (S (S O))))

let zero : nat = O

let incr (c : nat) : nat =
  match nat_eq c five with
  | True -> c
  | False -> S c

let read (c : nat) : nat = c

let spec (c : nat) : bool = nat_leq c five
"""


def _bounded_counter():
    """A counter saturating at 5; its invariant needs the constant ``five``
    (the Peano literal for 5 has AST size 6, past the term-size bound)."""
    return make_definition(
        "/test/bounded-counter", "test", _BOUNDED_COUNTER_SOURCE,
        concrete_type=NAT,
        operations=[("zero", ABSTRACT), ("incr", arrow(ABSTRACT, ABSTRACT)),
                    ("read", arrow(ABSTRACT, NAT))],
        spec_signature=[ABSTRACT],
        components=["five"],
        expected_invariant="let expected (c : nat) : bool = nat_leq c five",
    )


def test_nullary_components_become_pool_leaves():
    program = Program.from_source("let five : nat = S (S (S (S (S O))))")
    five = TypedComponent("five", program.global_type("five"),
                          program.global_value("five"))
    nat_leq = TypedComponent("nat_leq", program.global_type("nat_leq"),
                             program.global_value("nat_leq"))
    environments = [{"x": nat_of_int(3)}, {"x": nat_of_int(6)}]
    pool = TermPool(program, [five, nat_leq], [("x", TData("nat"))],
                    environments, max_size=5)

    nat_exprs = [str(e.expr) for e in pool.entries(TData("nat"))]
    assert "five" in nat_exprs
    (leaf,) = [e for e in pool.entries(TData("nat")) if str(e.expr) == "five"]
    assert leaf.size == 1
    assert leaf.vector == (nat_of_int(5), nat_of_int(5))
    # ... and the constant participates in applications.
    bool_entries = {str(e.expr): e.vector for e in pool.entries(TData("bool"))}
    assert bool_entries["((nat_leq x) five)"] == (VCtor("True"), VCtor("False"))


def test_synthesis_reaches_invariants_needing_a_nullary_component():
    instance = _bounded_counter().instantiate()
    synthesizer = MythSynthesizer(instance)
    positives = [nat_of_int(i) for i in range(6)]
    negatives = [nat_of_int(6), nat_of_int(7)]
    candidates = synthesizer.synthesize(positives, negatives)
    best = candidates[0]
    assert "five" in best.render()
    assert best(nat_of_int(5))
    assert not best(nat_of_int(6))


def test_inference_succeeds_on_module_needing_a_nullary_component():
    from repro.core.config import FAST_VERIFIER_BOUNDS, HanoiConfig
    from repro.core.hanoi import HanoiInference

    config = HanoiConfig(verifier_bounds=FAST_VERIFIER_BOUNDS, timeout_seconds=90)
    result = HanoiInference(_bounded_counter(), config=config).infer()
    assert result.succeeded, result.message
    assert "five" in result.render_invariant()


# -- nested matches never re-destructure an already-matched scrutinee -------------


def _rematches_scrutinee(expr, matched=frozenset()):
    """True when some match in ``expr`` destructures a variable an enclosing
    match already destructured."""
    if isinstance(expr, EMatch):
        scrutinee = expr.scrutinee
        inner = matched
        if isinstance(scrutinee, EVar):
            if scrutinee.name in matched:
                return True
            inner = matched | {scrutinee.name}
        return any(_rematches_scrutinee(b.body, inner) for b in expr.branches)
    if isinstance(expr, EApp):
        return (_rematches_scrutinee(expr.fn, matched)
                or _rematches_scrutinee(expr.arg, matched))
    if isinstance(expr, ECtor):
        return expr.payload is not None and _rematches_scrutinee(expr.payload, matched)
    return False


def test_nested_matches_skip_already_matched_scrutinees(listset):
    """At depth >= 3 a branch's context still contains the scrutinee the
    enclosing match destructured; re-matching it only duplicates work."""
    synthesizer = MythSynthesizer(listset, bounds=SynthesisBounds(max_match_depth=3))
    oracle = ExampleOracle.build(
        [L(), L(1), L(2, 1), L(3, 2, 1)],
        [L(1, 1), L(2, 2, 1), L(1, 2), L(3, 1, 2)],
        listset.concrete_type, listset.program.types)
    bodies = synthesizer._candidate_bodies(oracle)
    assert bodies
    assert not any(_rematches_scrutinee(body) for body in bodies)


def test_branch_bodies_do_not_rematch_the_enclosing_scrutinee(listset):
    """Simulates the branch context of ``match x with Cons (hd, tl) ->
    match tl with Cons (hd2, tl2) -> _``: the body search for the inner
    branch must not propose ``match tl with ...`` again - every routed
    example already fixed tl's constructor, so the re-match is pure
    duplication."""
    LIST = TData("list")
    synthesizer = MythSynthesizer(listset, bounds=SynthesisBounds(max_match_depth=3))
    param = synthesizer.param
    context = ((param, LIST), ("hd", NAT), ("tl", LIST), ("hd2", NAT), ("tl2", LIST))

    def env(*ints):
        value = L(*ints)
        return {param: value, "hd": nat_of_int(ints[0]), "tl": L(*ints[1:]),
                "hd2": nat_of_int(ints[1]), "tl2": L(*ints[2:])}

    examples = [(env(2, 1), True), (env(3, 2, 1), True),
                (env(1, 1), False), (env(2, 2, 1), False)]
    oracle = ExampleOracle.build(
        [L(2, 1), L(3, 2, 1)], [L(1, 1), L(2, 2, 1)],
        listset.concrete_type, listset.program.types)
    # _candidate_bodies normally installs the oracle and its interpreting
    # function for the duration of a synthesize() call; mirror that here.
    from repro.lang.values import VNative, v_bool
    synthesizer._MythSynthesizer__oracle = oracle
    synthesizer._MythSynthesizer__recursive_fn = VNative(
        lambda value: v_bool(oracle.expected(value)), name="inv")

    bodies = synthesizer._branch_bodies(
        context, examples, frozenset(), oracle, depth=2,
        matched=frozenset({param, "tl"}))
    assert bodies
    rematched = [body for body in bodies
                 if isinstance(body, EMatch)
                 and isinstance(body.scrutinee, EVar)
                 and body.scrutinee.name in (param, "tl")]
    assert rematched == []
