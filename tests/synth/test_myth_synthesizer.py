"""Unit tests for the Myth-like synthesizer, the term pools, the result cache,
and the fold-capable extension."""

import pytest

from repro.core.stats import InferenceStats
from repro.lang.types import TData
from repro.lang.values import nat_of_int, v_list, VCtor, VTuple
from repro.suite.registry import get_benchmark
from repro.synth.base import SynthesisFailure
from repro.synth.bottomup import TermPool, TypedComponent
from repro.synth.cache import SynthesisResultCache
from repro.synth.folds import FoldSynthesizer
from repro.synth.myth import MythSynthesizer


def L(*ints):
    return v_list([nat_of_int(i) for i in ints])


@pytest.fixture(scope="module")
def listset():
    return get_benchmark("/coq/unique-list-::-set").instantiate()


@pytest.fixture(scope="module")
def synthesizer(listset):
    return MythSynthesizer(listset)


def test_no_examples_yields_trivial_candidate(synthesizer):
    candidates = synthesizer.synthesize([], [])
    assert candidates
    first = candidates[0]
    assert first(L()) and first(L(1, 1)) and first(L(2, 3))


def test_candidates_are_consistent_with_examples(synthesizer):
    positives = [L(), L(3), L(0)]
    negatives = [L(1, 1), L(0, 0)]
    for candidate in synthesizer.synthesize(positives, negatives):
        assert all(candidate(p) for p in positives)
        assert all(not candidate(n) for n in negatives)


def test_recursive_no_duplicates_invariant_is_reachable(synthesizer):
    """With enough examples the no-duplicates invariant (or an equivalent
    predicate) is synthesized: it must reject duplicate lists it never saw."""
    positives = [L(), L(0), L(1), L(2), L(1, 0), L(2, 1, 0)]
    negatives = [L(1, 1), L(0, 0), L(2, 2), L(0, 1, 0), L(2, 0, 2)]
    candidates = synthesizer.synthesize(positives, negatives)
    best = candidates[0]
    assert best(L(3, 2, 1))
    assert not best(L(3, 3))


def test_synthesis_failure_when_examples_overlap(synthesizer):
    with pytest.raises(SynthesisFailure):
        synthesizer.synthesize([L(1)], [L(1)])


def test_stats_record_synthesis_calls(listset):
    stats = InferenceStats()
    synthesizer = MythSynthesizer(listset, stats=stats)
    synthesizer.synthesize([L()], [L(1, 1)])
    assert stats.synthesis_calls == 1
    assert stats.synthesis_time > 0


def test_product_concrete_type_synthesis():
    """The sized-list benchmark has a product concrete type; the synthesizer
    destructures it with a tuple pattern."""
    definition = get_benchmark("/other/sized-list")
    instance = definition.instantiate()
    synthesizer = MythSynthesizer(instance)
    good = [VTuple((nat_of_int(0), L())), VTuple((nat_of_int(1), L(2))), VTuple((nat_of_int(2), L(1, 0)))]
    bad = [VTuple((nat_of_int(1), L())), VTuple((nat_of_int(0), L(1))),
           VTuple((nat_of_int(2), L(5))), VTuple((nat_of_int(1), L(1, 2)))]
    candidates = synthesizer.synthesize(good, bad)
    best = candidates[0]
    assert best(VTuple((nat_of_int(3), L(5, 4, 3))))
    assert not best(VTuple((nat_of_int(2), L(9))))


def test_term_pool_observational_equivalence(listset):
    """Two terms with the same behaviour on the examples are deduplicated."""
    program = listset.program
    components = [
        TypedComponent("nat_eq", program.global_type("nat_eq"), program.global_value("nat_eq")),
        TypedComponent("andb", program.global_type("andb"), program.global_value("andb")),
    ]
    environments = [{"x": nat_of_int(0)}, {"x": nat_of_int(1)}]
    pool = TermPool(program, components, [("x", TData("nat"))], environments, max_size=5)
    bool_entries = pool.entries(TData("bool"))
    vectors = [entry.vector for entry in bool_entries]
    assert len(vectors) == len(set(vectors)), "behaviourally equal terms must be merged"


def test_term_pool_respects_restrictions(listset):
    program = listset.program
    lookup = TypedComponent(
        "lookup", program.global_type("lookup"), program.global_value("lookup"),
        argument_restrictions=(frozenset({"tl"}), None),
    )
    environments = [
        {"x": L(1, 1), "tl": L(1), "hd": nat_of_int(1)},
        {"x": L(0), "tl": L(), "hd": nat_of_int(0)},
    ]
    pool = TermPool(program, [lookup], [("x", TData("list")), ("tl", TData("list")), ("hd", TData("nat"))],
                    environments, max_size=5)
    exprs = [str(e.expr) for e in pool.entries(TData("bool"))]
    assert any("lookup tl" in text for text in exprs)
    assert not any("lookup x" in text for text in exprs)


def test_synthesis_result_cache_roundtrip(synthesizer):
    cache = SynthesisResultCache()
    candidates = synthesizer.synthesize([L()], [L(1, 1)])
    cache.store(candidates)
    assert len(cache) == len({c.decl for c in candidates})
    hit = cache.lookup([L()], [L(1, 1)])
    assert hit is not None
    # An inconsistent query yields no cached candidate.
    assert cache.lookup([L(1, 1)], [L()]) is None or not cache.lookup([L(1, 1)], [L()])(L())


def test_fold_synthesizer_installs_derived_components():
    definition = get_benchmark("/vfa/tree-::-priqueue*")
    instance = definition.instantiate()
    synthesizer = FoldSynthesizer(instance)
    assert instance.program.has_global("fold_max")
    assert "fold_max" in synthesizer.extra_components
    leaf = VCtor("Leaf")
    node = VCtor("Node", VTuple((leaf, nat_of_int(4), leaf)))
    fold_max = instance.program.evaluator.globals["fold_max"]
    assert instance.program.apply(fold_max, node) == nat_of_int(4)
    assert instance.program.apply(fold_max, leaf) == nat_of_int(0)
