"""Tests for the cross-iteration synthesis evaluation (term-pool) cache.

Mirrors ``tests/verify/test_evalcache.py``: the cache must be *invisible* in
outcomes.  Every synthesis call returns exactly the candidate stream the
uncached enumeration would (same candidates, same order), and whole inference
runs produce byte-identical statuses, invariants, and event logs.  What
changes is only how much enumeration work repeats - asserted here through
the hit/miss counters.

Set ``POOLCACHE_FULL_EQUIVALENCE=1`` to extend the equivalence sweep from
the representative sample to all 28 registered built-ins (the CI
equivalence job does; it is too slow for the default tier-1 run).
"""

import os

import pytest

from repro.core.config import FAST_VERIFIER_BOUNDS, HanoiConfig
from repro.core.hanoi import HanoiInference
from repro.core.stats import InferenceStats
from repro.lang.types import TData
from repro.lang.values import nat_of_int, v_list
from repro.spec.loader import load_module_file
from repro.suite.registry import get_benchmark
from repro.synth.bottomup import TermPool, TypedComponent
from repro.synth.myth import MythSynthesizer
from repro.synth.poolcache import CRASHED, SynthesisEvaluationCache

CONFIG = HanoiConfig(verifier_bounds=FAST_VERIFIER_BOUNDS, timeout_seconds=90)

#: Multi-iteration built-ins (plenty of repeated synthesis) plus
#: single-iteration ones (the cache must not change their behaviour either).
EQUIVALENCE_SAMPLE = [
    "/coq/unique-list-::-set",
    "/coq/sorted-list-::-set",
    "/other/stutter-list",
    "/other/sized-list",
    "/vfa/assoc-list-::-table",
]

MODULES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "examples", "modules")
PACK_FILES = ["bounded-stack.hanoi", "two-list-queue.hanoi", "parity-counter.hanoi"]


class _RecordingSynthesizer(MythSynthesizer):
    """Logs the rendered candidate stream of every synthesize() call."""

    def __init__(self, *args, stream_log, **kwargs):
        super().__init__(*args, **kwargs)
        self._stream_log = stream_log

    def synthesize(self, positives, negatives):
        candidates = super().synthesize(positives, negatives)
        self._stream_log.append(tuple(p.render() for p in candidates))
        return candidates


def _recording_factory(stream_log):
    def factory(instance, **kwargs):
        return _RecordingSynthesizer(instance, stream_log=stream_log, **kwargs)
    return factory


def _run_pair(definition, config=CONFIG):
    """One inference run with the pool cache and one without, with the full
    candidate stream of every synthesis call recorded."""
    cached_stream, uncached_stream = [], []
    cached = HanoiInference(
        definition, config=config,
        synthesizer_factory=_recording_factory(cached_stream)).infer()
    uncached = HanoiInference(
        definition, config=config.without_synthesis_evaluation_caching(),
        synthesizer_factory=_recording_factory(uncached_stream)).infer()
    return cached, uncached, cached_stream, uncached_stream


def _assert_equivalent(cached, uncached, cached_stream, uncached_stream):
    assert cached.status == uncached.status
    assert cached.iterations == uncached.iterations
    assert cached.render_invariant() == uncached.render_invariant()
    # Counterexample events must match step for step: the cache may never
    # alter which candidate a synthesis call proposes.
    assert cached.events == uncached.events
    # ... and the full candidate stream (every alternative, in order) must be
    # byte-identical, not just the chosen candidates.
    assert cached_stream == uncached_stream
    assert uncached.stats.pool_cache_hits == 0
    assert uncached.stats.pool_cache_misses == 0


@pytest.mark.parametrize("name", EQUIVALENCE_SAMPLE)
def test_cached_and_uncached_inference_agree_on_builtins(name):
    cached, uncached, on_stream, off_stream = _run_pair(get_benchmark(name))
    _assert_equivalent(cached, uncached, on_stream, off_stream)
    assert cached.succeeded


@pytest.mark.parametrize("filename", PACK_FILES)
def test_cached_and_uncached_inference_agree_on_example_packs(filename):
    definition = load_module_file(os.path.join(MODULES_DIR, filename))
    cached, uncached, on_stream, off_stream = _run_pair(definition)
    _assert_equivalent(cached, uncached, on_stream, off_stream)
    assert cached.succeeded


@pytest.mark.skipif(os.environ.get("POOLCACHE_FULL_EQUIVALENCE") != "1",
                    reason="full 28-benchmark sweep; run by the CI equivalence job")
def test_cached_and_uncached_inference_agree_on_all_builtins():
    from repro.suite.registry import all_benchmark_names

    config = HanoiConfig(verifier_bounds=FAST_VERIFIER_BOUNDS, timeout_seconds=45)
    for name in all_benchmark_names():
        cached, uncached, on_stream, off_stream = _run_pair(get_benchmark(name), config)
        if "timeout" in (cached.status, uncached.status):
            # A wall-clock cutoff truncates the two runs at different points;
            # there is no determinate stream to compare.
            continue
        _assert_equivalent(cached, uncached, on_stream, off_stream)


def test_multi_iteration_runs_hit_the_cache():
    result = HanoiInference(get_benchmark("/coq/sorted-list-::-set"), config=CONFIG).infer()
    assert result.succeeded
    assert result.iterations > 1
    assert result.stats.pool_cache_hits > 0
    assert result.stats.pool_cache_misses > 0
    # The counters travel through serialization with everything else.
    row = result.stats.as_dict()
    assert row["pool_cache_hits"] == result.stats.pool_cache_hits
    restored = InferenceStats.from_dict(result.stats.to_dict())
    assert restored.pool_cache_hits == result.stats.pool_cache_hits
    assert restored.pool_cache_misses == result.stats.pool_cache_misses


def test_config_toggle_disables_the_cache():
    engine = HanoiInference(
        get_benchmark("/coq/unique-list-::-set"),
        config=CONFIG.without_synthesis_evaluation_caching())
    assert engine.pool_cache is None
    assert engine.synthesizer.pool_cache is None
    enabled = HanoiInference(get_benchmark("/coq/unique-list-::-set"), config=CONFIG)
    assert enabled.pool_cache is not None
    assert enabled.synthesizer.pool_cache is enabled.pool_cache


# -- pool-level behaviour ---------------------------------------------------------


@pytest.fixture(scope="module")
def listset():
    return get_benchmark("/coq/unique-list-::-set").instantiate()


def _components(program):
    return [
        TypedComponent("nat_eq", program.global_type("nat_eq"), program.global_value("nat_eq")),
        TypedComponent("lookup", program.global_type("lookup"), program.global_value("lookup")),
    ]


def _pool(listset, cache, stats, environments):
    return TermPool(
        listset.program, _components(listset.program),
        context=[("x", TData("list")), ("n", TData("nat"))],
        environments=environments, max_size=5, cache=cache, stats=stats)


ENVIRONMENTS = [
    {"x": v_list([nat_of_int(1)]), "n": nat_of_int(1)},
    {"x": v_list([nat_of_int(2), nat_of_int(1)]), "n": nat_of_int(0)},
]


def test_identical_pools_replay_without_evaluation(listset):
    cache = SynthesisEvaluationCache()
    stats = InferenceStats()
    first = _pool(listset, cache, stats, ENVIRONMENTS)
    misses_after_first = stats.pool_cache_misses
    hits_after_first = stats.pool_cache_hits
    assert misses_after_first > 0
    assert len(cache.pools) == 1

    second = _pool(listset, cache, stats, ENVIRONMENTS)
    # The replay evaluated nothing new and credited exactly the avoided
    # per-environment applications (the same unit misses are counted in).
    assert stats.pool_cache_misses == misses_after_first
    assert stats.pool_cache_hits - hits_after_first == first._evaluations

    plain = _pool(listset, None, None, ENVIRONMENTS)
    for result_type in (TData("bool"), TData("nat"), TData("list")):
        replayed = [(str(e.expr), e.size, e.vector) for e in second.entries(result_type)]
        fresh = [(str(e.expr), e.size, e.vector) for e in plain.entries(result_type)]
        assert replayed == fresh


def test_changed_environments_rebuild_through_the_application_memo(listset):
    cache = SynthesisEvaluationCache()
    stats = InferenceStats()
    _pool(listset, cache, stats, ENVIRONMENTS)
    misses_after_first = stats.pool_cache_misses

    # A grown example set changes the pool key, so the skeleton is rebuilt -
    # but applications over previously seen argument values replay from the
    # memo, so only the new environment costs fresh evaluations.
    grown = ENVIRONMENTS + [{"x": v_list([]), "n": nat_of_int(2)}]
    hits_before = stats.pool_cache_hits
    rebuilt = _pool(listset, cache, stats, grown)
    assert len(cache.pools) == 2
    assert stats.pool_cache_hits > hits_before
    fresh = stats.pool_cache_misses - misses_after_first
    assert 0 < fresh < misses_after_first

    plain = _pool(listset, None, None, grown)
    assert ([str(e.expr) for e in rebuilt.entries(TData("bool"))]
            == [str(e.expr) for e in plain.entries(TData("bool"))])


def test_crash_outcomes_are_memoized(listset):
    from repro.lang.types import arrow
    from repro.lang.values import VNative

    calls = []

    def explode(value):
        calls.append(value)
        raise ValueError("component crash")

    program = listset.program
    crashy = TypedComponent("crashy", arrow(TData("nat"), TData("bool")),
                            VNative(explode, name="crashy"))

    cache = SynthesisEvaluationCache()
    stats = InferenceStats()
    environments = [{"n": nat_of_int(1)}, {"n": nat_of_int(2)}]

    TermPool(program, [crashy], [("n", TData("nat"))], environments,
             max_size=3, cache=cache, stats=stats)
    first_calls = len(calls)
    assert first_calls > 0
    assert cache.applications.get(crashy.fn, (nat_of_int(1),)) is CRASHED

    # A different pool (different context name => different pool key) reuses
    # the crash outcomes instead of re-raising.
    TermPool(program, [crashy], [("m", TData("nat"))],
             [{"m": nat_of_int(1)}, {"m": nat_of_int(2)}],
             max_size=3, cache=cache, stats=stats)
    assert len(calls) == first_calls
    assert stats.pool_cache_hits > 0


def test_memo_caps_bound_memory(listset):
    cache = SynthesisEvaluationCache(max_application_entries=5, max_pool_entries=1)
    stats = InferenceStats()
    _pool(listset, cache, stats, ENVIRONMENTS)
    assert len(cache.applications) == 5
    assert len(cache.pools) == 1
    # A second, different pool cannot be stored, but the build still works.
    grown = ENVIRONMENTS + [{"x": v_list([]), "n": nat_of_int(2)}]
    _pool(listset, cache, stats, grown)
    assert len(cache.pools) == 1
