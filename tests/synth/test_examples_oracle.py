"""Unit and property tests for example oracles and trace completeness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang.types import TData
from repro.lang.values import nat_of_int, v_list
from repro.suite.registry import get_benchmark
from repro.synth.base import SynthesisFailure
from repro.synth.examples import ExampleOracle, subvalues_at_type


@pytest.fixture(scope="module")
def listset():
    return get_benchmark("/coq/unique-list-::-set").instantiate()


def L(*ints):
    return v_list([nat_of_int(i) for i in ints])


def test_subvalues_of_list_are_its_suffixes(listset):
    value = L(3, 1, 2)
    subs = subvalues_at_type(value, TData("list"), TData("list"), listset.program.types)
    assert len(subs) == 4  # [3;1;2], [1;2], [2], []
    assert value in subs
    assert L() in subs


def test_oracle_maps_examples_and_pads_subvalues(listset):
    oracle = ExampleOracle.build([L()], [L(1, 1)], TData("list"), listset.program.types)
    assert oracle.expected(L()) is True
    assert oracle.expected(L(1, 1)) is False
    # Trace completeness: the sub-list [1] was added and defaults to false.
    assert L(1) in oracle
    assert oracle.expected(L(1)) is False


def test_existing_entries_are_not_overridden_by_padding(listset):
    oracle = ExampleOracle.build([L(), L(1)], [L(1, 1)], TData("list"), listset.program.types)
    assert oracle.expected(L(1)) is True


def test_overlapping_examples_rejected(listset):
    with pytest.raises(SynthesisFailure):
        ExampleOracle.build([L(1)], [L(1)], TData("list"), listset.program.types)


def test_consistency_uses_original_examples_only(listset):
    oracle = ExampleOracle.build([L()], [L(1, 1)], TData("list"), listset.program.types)
    # A predicate wrong on the padded value [1] but right on the originals is
    # still "consistent" (padding is internal to the synthesizer).
    predicate = lambda v: v != L(1, 1)
    assert oracle.consistent(predicate)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.lists(st.integers(min_value=0, max_value=3), max_size=4), min_size=1, max_size=4))
def test_oracle_is_trace_complete(lists):
    """Property: every sub-list (at the concrete type) of every example value
    has an entry in the oracle."""
    instance = get_benchmark("/coq/unique-list-::-set").instantiate()
    values = [v_list([nat_of_int(i) for i in xs]) for xs in lists]
    oracle = ExampleOracle.build(values, [], TData("list"), instance.program.types)
    for value in values:
        for sub in subvalues_at_type(value, TData("list"), TData("list"), instance.program.types):
            assert sub in oracle


def test_oracle_orders_equal_size_examples_deterministically(listset):
    """Regression: sorting by size alone left equal-size values in the input
    set's hash-seed-dependent iteration order, which reached the example
    environments (and therefore the candidate stream)."""
    from repro.lang.values import value_order

    positives = [L(3, 1), L(1, 3), L(2, 4), L(4, 2), L(0, 5)]
    negatives = [L(1, 1), L(2, 2), L(3, 3)]
    oracle = ExampleOracle.build(set(positives), set(negatives),
                                 TData("list"), listset.program.types)
    assert list(oracle.positives) == sorted(positives, key=value_order)
    assert list(oracle.negatives) == sorted(negatives, key=value_order)


def test_oracle_order_is_reproducible_across_hash_seeds():
    """The oracle's example order (and hence everything downstream of it)
    must not vary with PYTHONHASHSEED."""
    import os
    import subprocess
    import sys

    repo = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    script = (
        "from repro.lang.types import TData\n"
        "from repro.lang.values import nat_of_int, v_list\n"
        "from repro.suite.registry import get_benchmark\n"
        "from repro.synth.examples import ExampleOracle\n"
        "def L(*ints):\n"
        "    return v_list([nat_of_int(i) for i in ints])\n"
        "types = get_benchmark('/coq/unique-list-::-set').instantiate().program.types\n"
        "oracle = ExampleOracle.build(\n"
        "    {L(3, 1), L(1, 3), L(2, 4), L(4, 2)}, {L(1, 1), L(2, 2)},\n"
        "    TData('list'), types)\n"
        "print([str(v) for v in oracle.positives])\n"
        "print([str(v) for v in oracle.negatives])\n"
        "print([str(v) for v in oracle.all_values])\n"
    )
    outputs = []
    for seed in ("1", "7"):
        env = dict(os.environ, PYTHONHASHSEED=seed,
                   PYTHONPATH=os.path.join(repo, "src"))
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True, check=True)
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]
