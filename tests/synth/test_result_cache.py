"""Tests for the incremental synthesis result cache (Section 4.4).

The cache's contract is unchanged from the seed - ``lookup`` returns the
first stored candidate consistent with the given example sets - but lookups
now track per-candidate progress through the example logs instead of
rescanning everything.  These tests pin down both the contract and the
incrementality (via predicates that count their evaluations).
"""

from repro.core.predicate import Predicate
from repro.lang.values import nat_of_int, v_list
from repro.suite.registry import get_benchmark
from repro.synth.cache import SynthesisResultCache


def L(*ints):
    return v_list([nat_of_int(i) for i in ints])


class CountingPredicate:
    """Wraps a predicate, counting evaluations of *distinct* lookups (the
    underlying Predicate memoizes, so we count calls before its memo)."""

    def __init__(self, predicate):
        self.predicate = predicate
        self.calls = 0
        # The cache deduplicates stored candidates by their definition.
        self.decl = predicate.decl

    def __call__(self, value):
        self.calls += 1
        return self.predicate(value)


def _nodup_predicate():
    definition = get_benchmark("/coq/unique-list-::-set")
    program = definition.instantiate().program
    return Predicate.from_source(definition.expected_invariant, program)


def _never_predicate():
    definition = get_benchmark("/coq/unique-list-::-set")
    program = definition.instantiate().program
    return Predicate.from_source("let never (l : list) : bool = False", program)


def test_lookup_returns_first_consistent_candidate():
    cache = SynthesisResultCache()
    never, nodup = _never_predicate(), _nodup_predicate()
    cache.store([never, nodup])
    assert len(cache) == 2
    assert cache.candidates == (never, nodup)

    # never rejects the positive; nodup separates the sets.
    found = cache.lookup([L(1)], [L(2, 2)])
    assert found is nodup
    # With no positives, never (stored first) is consistent with anything.
    assert cache.lookup([], []) is never


def test_store_deduplicates_by_definition():
    cache = SynthesisResultCache()
    nodup = _nodup_predicate()
    cache.store([nodup])
    cache.store([nodup])
    assert len(cache) == 1


def test_monotone_growth_checks_only_new_examples():
    cache = SynthesisResultCache()
    counting = CountingPredicate(_nodup_predicate())
    cache.store([counting])

    assert cache.lookup([L(), L(1)], [L(2, 2)]) is counting
    calls_first = counting.calls
    assert calls_first == 3

    # Same sets again: nothing new to evaluate.
    assert cache.lookup([L(), L(1)], [L(2, 2)]) is counting
    assert counting.calls == calls_first

    # One new positive, one new negative: exactly two fresh evaluations.
    assert cache.lookup([L(), L(1), L(3)], [L(2, 2), L(4, 4)]) is counting
    assert counting.calls == calls_first + 2


def test_dead_candidates_are_not_reevaluated_while_positives_persist():
    cache = SynthesisResultCache()
    counting = CountingPredicate(_never_predicate())
    cache.store([counting])

    assert cache.lookup([L(1)], []) is None
    calls_first = counting.calls
    assert calls_first == 1

    # Still dead, no matter how much the sets grow: zero further evaluations.
    assert cache.lookup([L(1), L(2), L(3)], [L(4, 4)]) is None
    assert counting.calls == calls_first


def test_shrinking_example_sets_resets_and_stays_correct():
    """Correctness never depends on monotonicity: V- resets on weakening, and
    arbitrary callers may shrink either set."""
    cache = SynthesisResultCache()
    never, nodup = _never_predicate(), _nodup_predicate()
    cache.store([never, nodup])

    # never dies against a positive ...
    assert cache.lookup([L(1)], []) is nodup
    # ... but revives once the offending positive is gone.
    assert cache.lookup([], [L(5)]) is never

    # nodup accepts the negative [1] here, so it is inconsistent ...
    assert cache.lookup([L(2, 2)], [L(1)]) is None
    # ... yet consistent again after V- resets (the Hanoi weakening step).
    assert cache.lookup([L(2, 2)], []) is None  # [2,2] is a rejected positive
    assert cache.lookup([L(1)], []) is nodup


def test_progress_reports_per_candidate_state():
    cache = SynthesisResultCache()
    never = _never_predicate()
    cache.store([never])
    cache.lookup([L(1)], [])
    (entry,) = cache.progress()
    assert entry == (0, 0, True)  # died on the first positive


# -- deterministic example-log ordering (regression: hash-seed dependence) --------


def test_example_logs_extend_in_deterministic_order():
    """``sync`` receives Python sets; without an explicit order the log (and
    therefore which offending negative each entry parks on) would follow the
    interpreter's hash seed."""
    from repro.lang.values import value_order
    from repro.synth.cache import _ExampleLog

    values = [L(3, 1), L(2), L(1, 2, 3), L(5), L(4, 4)]
    log = _ExampleLog()
    log.sync(set(values))
    assert log.values == sorted(values, key=value_order)

    # Extensions append the fresh values in the same order ...
    extra = [L(9), L(0, 7)]
    log.sync(set(values) | set(extra))
    assert log.values[len(values):] == sorted(extra, key=value_order)

    # ... and a generation reset re-sorts the surviving set.
    log.sync({L(2), L(5), L(3, 1)})
    assert log.generation == 1
    assert log.values == sorted([L(2), L(5), L(3, 1)], key=value_order)


def test_lookup_order_is_reproducible_across_hash_seeds():
    """The same lookup sequence must park every entry on the same log indices
    regardless of PYTHONHASHSEED (which reorders Python set iteration)."""
    import os
    import subprocess
    import sys

    repo = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    script = (
        "from repro.lang.values import nat_of_int, v_list\n"
        "from repro.synth.cache import SynthesisResultCache\n"
        "from repro.core.predicate import Predicate\n"
        "from repro.suite.registry import get_benchmark\n"
        "definition = get_benchmark('/coq/unique-list-::-set')\n"
        "program = definition.instantiate().program\n"
        "nodup = Predicate.from_source(definition.expected_invariant, program)\n"
        "never = Predicate.from_source('let never (l : list) : bool = False', program)\n"
        "def L(*ints):\n"
        "    return v_list([nat_of_int(i) for i in ints])\n"
        "cache = SynthesisResultCache()\n"
        "cache.store([never, nodup])\n"
        "found = cache.lookup({L(), L(1), L(2)}, {L(1, 1), L(2, 2), L(3, 3)})\n"
        "print(found.render())\n"
        "print(cache.progress())\n"
        "print([str(v) for v in cache._positives.values])\n"
        "print([str(v) for v in cache._negatives.values])\n"
    )

    outputs = []
    for seed in ("0", "4242"):
        env = dict(os.environ, PYTHONHASHSEED=seed,
                   PYTHONPATH=os.path.join(repo, "src"))
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True, check=True)
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]
