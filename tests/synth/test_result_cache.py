"""Tests for the incremental synthesis result cache (Section 4.4).

The cache's contract is unchanged from the seed - ``lookup`` returns the
first stored candidate consistent with the given example sets - but lookups
now track per-candidate progress through the example logs instead of
rescanning everything.  These tests pin down both the contract and the
incrementality (via predicates that count their evaluations).
"""

from repro.core.predicate import Predicate
from repro.lang.values import nat_of_int, v_list
from repro.suite.registry import get_benchmark
from repro.synth.cache import SynthesisResultCache


def L(*ints):
    return v_list([nat_of_int(i) for i in ints])


class CountingPredicate:
    """Wraps a predicate, counting evaluations of *distinct* lookups (the
    underlying Predicate memoizes, so we count calls before its memo)."""

    def __init__(self, predicate):
        self.predicate = predicate
        self.calls = 0
        # The cache deduplicates stored candidates by their definition.
        self.decl = predicate.decl

    def __call__(self, value):
        self.calls += 1
        return self.predicate(value)


def _nodup_predicate():
    definition = get_benchmark("/coq/unique-list-::-set")
    program = definition.instantiate().program
    return Predicate.from_source(definition.expected_invariant, program)


def _never_predicate():
    definition = get_benchmark("/coq/unique-list-::-set")
    program = definition.instantiate().program
    return Predicate.from_source("let never (l : list) : bool = False", program)


def test_lookup_returns_first_consistent_candidate():
    cache = SynthesisResultCache()
    never, nodup = _never_predicate(), _nodup_predicate()
    cache.store([never, nodup])
    assert len(cache) == 2
    assert cache.candidates == (never, nodup)

    # never rejects the positive; nodup separates the sets.
    found = cache.lookup([L(1)], [L(2, 2)])
    assert found is nodup
    # With no positives, never (stored first) is consistent with anything.
    assert cache.lookup([], []) is never


def test_store_deduplicates_by_definition():
    cache = SynthesisResultCache()
    nodup = _nodup_predicate()
    cache.store([nodup])
    cache.store([nodup])
    assert len(cache) == 1


def test_monotone_growth_checks_only_new_examples():
    cache = SynthesisResultCache()
    counting = CountingPredicate(_nodup_predicate())
    cache.store([counting])

    assert cache.lookup([L(), L(1)], [L(2, 2)]) is counting
    calls_first = counting.calls
    assert calls_first == 3

    # Same sets again: nothing new to evaluate.
    assert cache.lookup([L(), L(1)], [L(2, 2)]) is counting
    assert counting.calls == calls_first

    # One new positive, one new negative: exactly two fresh evaluations.
    assert cache.lookup([L(), L(1), L(3)], [L(2, 2), L(4, 4)]) is counting
    assert counting.calls == calls_first + 2


def test_dead_candidates_are_not_reevaluated_while_positives_persist():
    cache = SynthesisResultCache()
    counting = CountingPredicate(_never_predicate())
    cache.store([counting])

    assert cache.lookup([L(1)], []) is None
    calls_first = counting.calls
    assert calls_first == 1

    # Still dead, no matter how much the sets grow: zero further evaluations.
    assert cache.lookup([L(1), L(2), L(3)], [L(4, 4)]) is None
    assert counting.calls == calls_first


def test_shrinking_example_sets_resets_and_stays_correct():
    """Correctness never depends on monotonicity: V- resets on weakening, and
    arbitrary callers may shrink either set."""
    cache = SynthesisResultCache()
    never, nodup = _never_predicate(), _nodup_predicate()
    cache.store([never, nodup])

    # never dies against a positive ...
    assert cache.lookup([L(1)], []) is nodup
    # ... but revives once the offending positive is gone.
    assert cache.lookup([], [L(5)]) is never

    # nodup accepts the negative [1] here, so it is inconsistent ...
    assert cache.lookup([L(2, 2)], [L(1)]) is None
    # ... yet consistent again after V- resets (the Hanoi weakening step).
    assert cache.lookup([L(2, 2)], []) is None  # [2,2] is a rejected positive
    assert cache.lookup([L(1)], []) is nodup


def test_progress_reports_per_candidate_state():
    cache = SynthesisResultCache()
    never = _never_predicate()
    cache.store([never])
    cache.lookup([L(1)], [])
    (entry,) = cache.progress()
    assert entry == (0, 0, True)  # died on the first positive
