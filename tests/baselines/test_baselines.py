"""Tests for the ∧Str, LA, and OneShot baselines (Section 5.5)."""

import pytest

from repro.baselines.conj_str import ConjunctivePredicate, ConjunctiveStrengtheningInference
from repro.baselines.linear_arbitrary import LinearArbitraryInference
from repro.baselines.oneshot import OneShotInference
from repro.core.hanoi import HanoiInference
from repro.core.predicate import Predicate
from repro.core.result import Status
from repro.lang.values import nat_of_int, v_list
from repro.suite.registry import get_benchmark

BENCHMARK = "/coq/unique-list-::-set"


def L(*ints):
    return v_list([nat_of_int(i) for i in ints])


def test_conjunctive_predicate_semantics(listset_instance):
    accepts_all = Predicate.from_source("let p (l : list) : bool = True", listset_instance.program)
    no_dups = Predicate.from_source(
        get_benchmark(BENCHMARK).expected_invariant, listset_instance.program
    )
    conj = ConjunctivePredicate([accepts_all, no_dups])
    assert conj(L(2, 1)) and not conj(L(1, 1))
    assert conj.size > no_dups.size
    assert "(* conjoined with *)" in conj.render()
    assert conj.consistent_with([L()], [L(0, 0)])
    with pytest.raises(ValueError):
        ConjunctivePredicate([])


def test_conj_str_solves_motivating_example(fast_config):
    result = ConjunctiveStrengtheningInference(get_benchmark(BENCHMARK), config=fast_config).infer()
    assert result.succeeded
    assert result.mode == "conj-str"
    assert not result.invariant(L(1, 1))
    assert result.invariant(L(2, 1))


def test_linear_arbitrary_solves_motivating_example(fast_config):
    result = LinearArbitraryInference(get_benchmark(BENCHMARK), config=fast_config).infer()
    assert result.succeeded
    assert result.mode == "linear-arbitrary"
    assert not result.invariant(L(1, 1))


def test_oneshot_on_motivating_example(fast_config):
    """The paper reports OneShot succeeds only on coq/unique-list-set."""
    result = OneShotInference(get_benchmark(BENCHMARK), config=fast_config).infer()
    assert result.iterations == 1
    assert result.succeeded


def test_oneshot_rejects_multi_abstract_specs(fast_config):
    """OneShot only applies when the spec quantifies over one abstract value."""
    result = OneShotInference(get_benchmark("/coq/unique-list-::-set+binfuncs"),
                              config=fast_config).infer()
    assert result.status == Status.FAILURE
    assert "single abstract value" in result.message


def test_hanoi_uses_no_more_verification_calls_than_conj_str(fast_config):
    """The qualitative Figure-8 comparison on the motivating example: the
    eager visible-inductiveness strategy needs no more checking work than
    conjunctive strengthening."""
    hanoi = HanoiInference(get_benchmark(BENCHMARK), config=fast_config).infer()
    conj = ConjunctiveStrengtheningInference(get_benchmark(BENCHMARK), config=fast_config).infer()
    assert hanoi.succeeded and conj.succeeded
    assert hanoi.stats.verification_calls <= conj.stats.verification_calls
    assert hanoi.stats.synthesis_calls <= conj.stats.synthesis_calls


def test_baseline_timeouts_are_reported(fast_config):
    from dataclasses import replace
    config = replace(fast_config, timeout_seconds=0.0)
    for cls in (ConjunctiveStrengtheningInference, LinearArbitraryInference, OneShotInference):
        result = cls(get_benchmark(BENCHMARK), config=config).infer()
        assert result.status == Status.TIMEOUT
