"""Warm-start transparency: disk-cached runs replay cold outcomes exactly."""

import os

import pytest

from repro.core.config import FAST_VERIFIER_BOUNDS, HanoiConfig
from repro.experiments.runner import run_module
from repro.gen.diff import outcome_fingerprint, persistent_cache_mismatches
from repro.gen.modgen import generate_corpus
from repro.spec.loader import load_module_file, load_module_text

CONFIG = HanoiConfig(verifier_bounds=FAST_VERIFIER_BOUNDS, timeout_seconds=60)
EXAMPLE = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                       "examples", "modules", "bounded-stack.hanoi")


@pytest.fixture(scope="module")
def generated():
    return generate_corpus(7, 1)[0].definition


def _flip_all_entries(cache_dir):
    flipped = 0
    for root, _, files in os.walk(cache_dir):
        for name in files:
            if not name.endswith(".bin"):
                continue
            path = os.path.join(root, name)
            with open(path, "r+b") as handle:
                blob = bytearray(handle.read())
                blob[len(blob) // 2] ^= 0xFF
                handle.seek(0)
                handle.write(blob)
            flipped += 1
    return flipped


def test_warm_start_replays_cold_outcome_exactly(tmp_path, generated):
    persistent = CONFIG.with_cache_dir(str(tmp_path / "cache"))

    plain = run_module(generated, config=CONFIG)
    cold = run_module(generated, config=persistent)
    warm = run_module(generated, config=persistent)

    assert outcome_fingerprint(plain) == outcome_fingerprint(cold)
    assert outcome_fingerprint(cold) == outcome_fingerprint(warm)
    assert cold.stats.disk_cache_hits == 0
    assert cold.stats.disk_cache_misses > 0
    assert warm.stats.disk_cache_hits > 0
    assert warm.stats.disk_cache_misses == 0


def test_corrupted_store_degrades_to_cold_with_warnings(tmp_path, generated):
    persistent = CONFIG.with_cache_dir(str(tmp_path / "cache"))
    cold = run_module(generated, config=persistent)
    assert _flip_all_entries(str(tmp_path / "cache")) > 0

    damaged = run_module(generated, config=persistent)
    assert outcome_fingerprint(damaged) == outcome_fingerprint(cold)
    assert damaged.stats.disk_cache_hits == 0
    warnings = [e for e in damaged.events
                if e.get("event") == "disk-cache-warning"]
    assert warnings, "every damaged entry must be reported, not crash"
    # The warning log is run metadata, not part of the outcome: the
    # fingerprint comparison above already proved it stays excluded.


def test_missing_store_root_is_a_plain_cold_start(tmp_path, generated):
    persistent = CONFIG.with_cache_dir(str(tmp_path / "never-created"))
    result = run_module(generated, config=persistent)
    assert result.stats.disk_cache_hits == 0
    assert result.stats.disk_cache_misses > 0
    assert not [e for e in result.events
                if e.get("event") == "disk-cache-warning"]


def test_editing_one_operation_reuses_the_rest(tmp_path):
    """The incremental workflow: edit one operation, keep the other hits."""
    text = open(EXAMPLE, encoding="utf-8").read()
    definition = load_module_file(EXAMPLE)
    persistent = CONFIG.with_cache_dir(str(tmp_path / "cache"))

    cold = run_module(definition, config=persistent)
    sections = cold.stats.disk_cache_misses
    assert sections > 2

    edited_text = text.replace("| Nil -> Nil", "| Nil -> empty", 1)
    assert edited_text != text
    edited = load_module_text(edited_text, path=EXAMPLE)
    warm = run_module(edited, config=persistent)

    # Exactly one section (the edited operation's memo) misses.
    assert warm.stats.disk_cache_misses == 1
    assert warm.stats.disk_cache_hits == sections - 1
    assert warm.status == cold.status
    assert warm.render_invariant() == cold.render_invariant()


def test_disabled_persistence_records_nothing(generated):
    result = run_module(generated, config=CONFIG)
    assert result.stats.disk_cache_hits == 0
    assert result.stats.disk_cache_misses == 0


@pytest.mark.fuzz
def test_differential_check_passes_on_example_module():
    definition = load_module_file(EXAMPLE)
    assert persistent_cache_mismatches(definition, modes=("hanoi",),
                                       config=CONFIG) == []


@pytest.mark.fuzz
def test_differential_check_passes_on_generated_corpus():
    for module in generate_corpus(3, 3):
        assert persistent_cache_mismatches(module.definition, modes=("hanoi",),
                                           config=CONFIG) == []
