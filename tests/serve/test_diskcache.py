"""The persistent disk-cache store: framing, corruption tolerance, keys."""

import os
import struct

import pytest

from repro.core.config import FAST_VERIFIER_BOUNDS, HanoiConfig
from repro.serve.diskcache import (
    MAGIC,
    STORE_VERSION,
    DiskCacheStore,
    PersistentCacheBinding,
)
from repro.spec.loader import load_module_file

CONFIG = HanoiConfig(verifier_bounds=FAST_VERIFIER_BOUNDS, timeout_seconds=60)
EXAMPLE = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                       "examples", "modules", "bounded-stack.hanoi")


def _store(tmp_path):
    warnings = []
    store = DiskCacheStore(str(tmp_path / "cache"),
                           warn=lambda msg, detail: warnings.append((msg, detail)))
    return store, warnings


def test_round_trip(tmp_path):
    store, warnings = _store(tmp_path)
    payload = {"entries": [(1, 2, 3)], "exhausted": False}
    assert store.put("spec", "ab" * 32, payload)
    assert store.get("spec", "ab" * 32) == payload
    assert warnings == []


def test_missing_entry_is_a_silent_miss(tmp_path):
    store, warnings = _store(tmp_path)
    assert store.get("spec", "cd" * 32) is None
    assert warnings == []  # plain miss: no warning


def test_stats_counts_entries_per_section(tmp_path):
    store, _ = _store(tmp_path)
    store.put("spec", "aa" * 32, 1)
    store.put("op", "bb" * 32, 2)
    store.put("op", "cc" * 32, 3)
    assert store.stats() == {"op": 2, "spec": 1}


# -- corruption tolerance: every kind of damage is a warned miss, never a
# -- crash, exercised against real on-disk entries ---------------------------


def _entry_path(store):
    store.put("op", "ee" * 32, ["payload"])
    return store.entry_path("op", "ee" * 32)


def test_truncated_entry_skipped_with_warning(tmp_path):
    store, warnings = _store(tmp_path)
    path = _entry_path(store)
    with open(path, "r+b") as handle:
        handle.truncate(5)
    assert store.get("op", "ee" * 32) is None
    assert any("truncated" in msg for msg, _ in warnings)


def test_garbage_entry_skipped_with_warning(tmp_path):
    store, warnings = _store(tmp_path)
    path = _entry_path(store)
    with open(path, "wb") as handle:
        handle.write(os.urandom(256))
    assert store.get("op", "ee" * 32) is None
    assert any("foreign" in msg or "corrupt" in msg for msg, _ in warnings)


def test_wrong_version_entry_skipped_with_warning(tmp_path):
    store, warnings = _store(tmp_path)
    path = _entry_path(store)
    with open(path, "r+b") as handle:
        blob = bytearray(handle.read())
        blob[:8] = struct.pack(">4sI", MAGIC, STORE_VERSION + 1)
        handle.seek(0)
        handle.write(blob)
    assert store.get("op", "ee" * 32) is None
    assert any("wrong-version" in msg for msg, _ in warnings)


@pytest.mark.parametrize("offset", [8, 24, -1])
def test_flipped_byte_fails_checksum(tmp_path, offset):
    """Flip one byte anywhere past the header: checksum rejects the entry."""
    store, warnings = _store(tmp_path)
    path = _entry_path(store)
    with open(path, "r+b") as handle:
        blob = bytearray(handle.read())
        blob[offset] ^= 0xFF
        handle.seek(0)
        handle.write(blob)
    assert store.get("op", "ee" * 32) is None
    assert warnings, "damage must be reported"


def test_unwritable_store_degrades_to_never_hitting(tmp_path):
    blocker = tmp_path / "blocked"
    blocker.write_text("a file where the store root should be")
    warnings = []
    store = DiskCacheStore(str(blocker),
                           warn=lambda msg, detail: warnings.append(msg))
    assert store.put("spec", "aa" * 32, 1) is False
    assert any("write failed" in msg for msg in warnings)
    assert store.get("spec", "aa" * 32) is None


# -- the binding's content keys ----------------------------------------------


@pytest.fixture(scope="module")
def binding():
    definition = load_module_file(EXAMPLE)
    return PersistentCacheBinding(DiskCacheStore("/nonexistent"),
                                  definition, definition.instantiate(), CONFIG)


def test_section_keys_are_hex_and_per_declaration(binding):
    keys = binding.operation_keys()
    assert set(keys) == {"empty", "push", "pop", "peek", "size"}
    all_keys = [binding.spec_key(), *keys.values(),
                *binding.component_keys().values()]
    assert len(set(all_keys)) == len(all_keys)
    assert all(len(k) == 64 and int(k, 16) >= 0 for k in all_keys)


def test_keys_are_deterministic(binding):
    definition = load_module_file(EXAMPLE)
    other = PersistentCacheBinding(DiskCacheStore("/nonexistent"),
                                   definition, definition.instantiate(), CONFIG)
    assert other.spec_key() == binding.spec_key()
    assert other.operation_keys() == binding.operation_keys()
    assert other.component_keys() == binding.component_keys()


def test_editing_one_operation_invalidates_only_its_key(binding):
    text = open(EXAMPLE, encoding="utf-8").read()
    edited_text = text.replace("| Nil -> Nil", "| Nil -> empty", 1)
    assert edited_text != text
    from repro.spec.loader import load_module_text

    definition = load_module_text(edited_text, path=EXAMPLE)
    edited_binding = PersistentCacheBinding(
        DiskCacheStore("/nonexistent"), definition,
        definition.instantiate(), CONFIG)

    before, after = binding.operation_keys(), edited_binding.operation_keys()
    assert after["pop"] != before["pop"]  # the edited operation
    for name in ("empty", "push", "peek", "size"):
        assert after[name] == before[name]  # untouched ones keep their keys
    assert edited_binding.spec_key() == binding.spec_key()
    assert edited_binding.component_keys() == binding.component_keys()


def test_bounds_and_fuel_are_part_of_every_key(binding):
    from dataclasses import replace

    definition = load_module_file(EXAMPLE)
    other_config = replace(CONFIG, eval_fuel=CONFIG.eval_fuel + 1)
    other = PersistentCacheBinding(DiskCacheStore("/nonexistent"),
                                   definition, definition.instantiate(),
                                   other_config)
    assert other.spec_key() != binding.spec_key()
    assert set(other.operation_keys().values()).isdisjoint(
        binding.operation_keys().values())
    assert set(other.component_keys().values()).isdisjoint(
        binding.component_keys().values())
