"""Hash-seed independence of the persistent store.

Content keys are sha256 over rendered text and exports are sorted by value
order, so the store a process writes must be byte-comparable no matter what
``PYTHONHASHSEED`` it ran under - otherwise a daemon restarted with a
different seed would silently cold-start (or worse, mix snapshots).  Each
case runs real inference in subprocesses pinned to different seeds.
"""

import json
import os
import subprocess
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

_SCRIPT = r"""
import json, os, sys
from repro.core.config import FAST_VERIFIER_BOUNDS, HanoiConfig
from repro.experiments.runner import run_module
from repro.gen.diff import outcome_fingerprint
from repro.gen.modgen import generate_corpus

cache_dir = sys.argv[1]
config = HanoiConfig(verifier_bounds=FAST_VERIFIER_BOUNDS,
                     timeout_seconds=60).with_cache_dir(cache_dir)
definition = generate_corpus(11, 1)[0].definition
result = run_module(definition, config=config)
entries = sorted(
    os.path.relpath(os.path.join(root, name), cache_dir)
    for root, _, files in os.walk(cache_dir)
    for name in files if name.endswith(".bin"))
print(json.dumps({
    "fingerprint": outcome_fingerprint(result),
    "hits": result.stats.disk_cache_hits,
    "misses": result.stats.disk_cache_misses,
    "entries": entries,
}))
"""


def _run(seed, cache_dir):
    env = dict(os.environ, PYTHONHASHSEED=str(seed),
               PYTHONPATH=os.path.join(REPO, "src"))
    proc = subprocess.run([sys.executable, "-c", _SCRIPT, str(cache_dir)],
                          capture_output=True, text=True, env=env,
                          timeout=300, check=True)
    return json.loads(proc.stdout)


@pytest.mark.parametrize("seeds", [(0, 1), (1, 42), (42, 0)])
def test_store_written_under_one_seed_warm_starts_under_another(tmp_path, seeds):
    write_seed, read_seed = seeds
    cache_dir = str(tmp_path / f"cache-{write_seed}-{read_seed}")

    cold = _run(write_seed, cache_dir)
    warm = _run(read_seed, cache_dir)

    assert cold["fingerprint"] == warm["fingerprint"]
    assert cold["hits"] == 0 and cold["misses"] > 0
    assert warm["misses"] == 0 and warm["hits"] > 0
    # Same content keys regardless of seed: the warm run re-writes the very
    # same files, never a parallel set of differently-keyed ones.
    assert cold["entries"] == warm["entries"]


def test_all_seeds_produce_identical_entry_sets(tmp_path):
    runs = {seed: _run(seed, str(tmp_path / f"cache-{seed}"))
            for seed in (0, 1, 42)}
    entry_sets = {tuple(run["entries"]) for run in runs.values()}
    fingerprints = {json.dumps(run["fingerprint"], sort_keys=True)
                    for run in runs.values()}
    assert len(entry_sets) == 1
    assert len(fingerprints) == 1
