"""The inference service: job scheduler, store dedup, and the HTTP API."""

import json
import threading
import time
import urllib.request

import pytest

from repro.core.config import FAST_VERIFIER_BOUNDS, HanoiConfig
from repro.gen.modgen import generate_corpus
from repro.serve.api import (
    ServiceError,
    fetch_events,
    fetch_health,
    fetch_job,
    fetch_jobs,
    fetch_result,
    make_server,
    submit_module,
    wait_for_job,
)
from repro.serve.jobs import SERVICE_PACK_TAG, JobScheduler
from repro.spec.errors import SpecFileError

CONFIG = HanoiConfig(verifier_bounds=FAST_VERIFIER_BOUNDS, timeout_seconds=60)


@pytest.fixture(scope="module")
def module_text():
    return generate_corpus(5, 1)[0].text


@pytest.fixture()
def scheduler(tmp_path):
    scheduler = JobScheduler(str(tmp_path / "state"), config=CONFIG, jobs=2)
    yield scheduler
    scheduler.close()


def _wait(scheduler, job, timeout=120.0):
    deadline = time.monotonic() + timeout
    while job.state not in ("done", "failed"):
        assert time.monotonic() < deadline, f"job stuck in {job.state}"
        time.sleep(0.05)
    return job


# -- scheduler ----------------------------------------------------------------


def test_job_runs_to_completion_with_events(scheduler, module_text):
    job = scheduler.submit(module_text)
    _wait(scheduler, job)
    assert job.state == "done"
    assert job.result["status"] == "success"
    assert job.result["pack"] == SERVICE_PACK_TAG
    assert job.result["variant"] == job.content_key
    records, cursor, closed = job.events.after(0)
    assert closed and cursor == len(records) > 0
    assert any(r.get("name") == "run-end" for r in records)


def test_resubmission_answers_from_the_store(scheduler, module_text):
    first = _wait(scheduler, scheduler.submit(module_text))
    again = scheduler.submit(module_text)
    assert again.state == "done"
    assert again.deduplicated
    assert again.result == first.result
    # force=True bypasses the store and actually re-runs.
    forced = _wait(scheduler, scheduler.submit(module_text, force=True))
    assert not forced.deduplicated
    assert forced.result["status"] == first.result["status"]


def test_same_name_different_content_is_not_deduplicated(scheduler):
    modules = generate_corpus(5, 2)
    first_text = modules[0].text
    renamed = modules[1].text.replace(
        f'benchmark "{modules[1].name}"', f'benchmark "{modules[0].name}"', 1)
    assert renamed != modules[1].text

    first = _wait(scheduler, scheduler.submit(first_text))
    collided = scheduler.submit(renamed)
    # Same declared benchmark name, different canonical content: different
    # variant in the resume key, so the collision runs instead of reusing
    # the other module's row.
    assert collided.benchmark == first.benchmark
    assert collided.content_key != first.content_key
    assert not collided.deduplicated
    _wait(scheduler, collided)
    assert collided.state == "done"


def test_submission_validation(scheduler, module_text):
    with pytest.raises(SpecFileError):
        scheduler.submit("not a module at (all")
    with pytest.raises(SpecFileError):
        scheduler.submit(module_text, mode="no-such-mode")
    builtin = module_text.replace(
        module_text.split('benchmark "')[1].split('"')[0],
        "/coq/unique-list-::-set", 1)
    with pytest.raises(SpecFileError):
        scheduler.submit(builtin)


def test_close_fails_queued_jobs(tmp_path, module_text):
    scheduler = JobScheduler(str(tmp_path / "state"), config=CONFIG, jobs=1)
    jobs = [scheduler.submit(module_text, force=True) for _ in range(4)]
    scheduler.close()
    assert all(job.state in ("done", "failed") for job in jobs)
    assert any(job.state == "failed" for job in jobs)


def test_warm_submission_hits_the_persistent_cache(scheduler, module_text):
    cold = _wait(scheduler, scheduler.submit(module_text))
    warm = _wait(scheduler, scheduler.submit(module_text, force=True))
    assert cold.result["stats"]["disk_cache_hits"] == 0
    assert warm.result["stats"]["disk_cache_hits"] > 0
    assert warm.result["stats"]["disk_cache_misses"] == 0
    assert warm.result["invariant"] == cold.result["invariant"]


# -- HTTP API -----------------------------------------------------------------


@pytest.fixture()
def service(tmp_path, request):
    scheduler = JobScheduler(str(tmp_path / "state"), config=CONFIG, jobs=2)
    server = make_server("127.0.0.1", 0, scheduler)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def test_api_round_trip(service, module_text):
    job = submit_module(service, module_text)
    assert job["state"] in ("queued", "running")
    done = wait_for_job(service, job["id"], timeout=120)
    assert done["state"] == "done"
    row = fetch_result(service, job["id"])
    assert row["status"] == "success"
    assert row["variant"] == job["content_key"]

    listed = fetch_jobs(service)
    assert [j["id"] for j in listed] == [job["id"]]
    assert fetch_job(service, job["id"])["state"] == "done"

    events = fetch_events(service, job["id"])
    assert events["closed"]
    assert any(r.get("name") == "run-end" for r in events["records"])
    # Long-polling past the end returns immediately with nothing new.
    tail = fetch_events(service, job["id"], after=events["next"], wait=5.0)
    assert tail["records"] == [] and tail["closed"]

    health = fetch_health(service)
    assert health["ok"] and health["jobs"] == {"done": 1}
    assert sum(health["cache_entries"].values()) > 0


def test_api_rejects_bad_submissions(service):
    with pytest.raises(ServiceError) as error:
        submit_module(service, "not a module at (all")
    assert error.value.status == 400
    with pytest.raises(ServiceError) as error:
        fetch_job(service, "no-such-job")
    assert error.value.status == 404
    with pytest.raises(ServiceError) as error:
        fetch_result(service, "no-such-job")
    assert error.value.status == 404
    request = urllib.request.Request(f"{service}/v1/jobs", data=b"{not json",
                                     headers={"Content-Type": "application/json"})
    with pytest.raises(urllib.error.HTTPError) as error:
        urllib.request.urlopen(request)
    assert error.value.code == 400


def test_api_result_404_until_done(service, module_text):
    job = submit_module(service, module_text)
    try:
        fetch_result(service, job["id"])
    except ServiceError as error:
        assert error.status == 404
    wait_for_job(service, job["id"], timeout=120)
    assert fetch_result(service, job["id"])["status"] == "success"


def test_api_sse_stream_ends_with_end_event(service, module_text):
    job = submit_module(service, module_text)
    wait_for_job(service, job["id"], timeout=120)
    with urllib.request.urlopen(
            f"{service}/v1/jobs/{job['id']}/stream", timeout=60) as response:
        assert response.headers["Content-Type"] == "text/event-stream"
        body = response.read().decode("utf-8")
    frames = [frame for frame in body.split("\n\n") if frame.strip()]
    assert frames[-1].startswith("event: end")
    payloads = [json.loads(frame[len("data: "):])
                for frame in frames[:-1] if frame.startswith("data: ")]
    assert any(r.get("name") == "run-end" for r in payloads)
