"""CLI surface of the definition-file subsystem: infer, export, list filters.

The heavier sweep paths (``run --pack`` over the pool) are covered at the
library level in ``test_pack.py``; here we drive ``repro.cli.main`` the way a
user would and check output, filters, and diagnostics-not-tracebacks.
"""

import os

import pytest

from repro.cli import main
from repro.spec import load_module_file

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "modules")
STACK = os.path.join(EXAMPLES_DIR, "bounded-stack.hanoi")


def test_infer_example_file(capsys):
    assert main(["infer", STACK, "--timeout", "60"]) == 0
    out = capsys.readouterr().out
    assert "/examples/bounded-stack" in out
    assert "status=success" in out
    assert "within_bound" in out


def test_infer_malformed_file_prints_diagnostic(tmp_path, capsys):
    path = tmp_path / "broken.hanoi"
    path.write_text("abstract type t = nat\nfrobnicate\n")
    with pytest.raises(SystemExit) as excinfo:
        main(["infer", str(path)])
    assert "broken.hanoi:2" in str(excinfo.value)


def test_export_single_benchmark_to_stdout(capsys):
    assert main(["export", "--benchmark", "/coq/unique-list-::-set"]) == 0
    out = capsys.readouterr().out
    assert 'benchmark "/coq/unique-list-::-set"' in out
    assert "abstract type t = list" in out


def test_export_all_round_trips_through_files(tmp_path, capsys):
    out_dir = str(tmp_path / "exported")
    assert main(["export", "--out", out_dir]) == 0
    files = sorted(f for f in os.listdir(out_dir) if f.endswith(".hanoi"))
    assert len(files) == 28
    # Filenames must avoid characters Windows rejects (':', '*').
    assert not any(set(f) & set(':*<>"|?') for f in files), files
    definition = load_module_file(
        os.path.join(out_dir, "coq__unique-list-..-set.hanoi"))
    assert definition.name == "/coq/unique-list-::-set"
    definition.instantiate()


def test_export_all_to_stdout_is_refused():
    with pytest.raises(SystemExit):
        main(["export"])


def test_export_unknown_benchmark():
    with pytest.raises(SystemExit):
        main(["export", "--benchmark", "/no/such"])


def test_list_group_filter(capsys):
    assert main(["list", "--group", "vfa"]) == 0
    out = capsys.readouterr().out
    assert "/vfa/bst-::-table" in out
    assert "/coq/bst-::-set*" not in out
    assert "Mode" not in out  # filtered listings skip the modes table


def test_list_fast_filter(capsys):
    assert main(["list", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "/coq/unique-list-::-set" in out
    assert "/coq/bst-::-set*" not in out


def test_list_unknown_group():
    with pytest.raises(SystemExit):
        main(["list", "--group", "nope"])


def test_list_pack_adds_column(capsys):
    from repro.spec import unregister_pack

    try:
        assert main(["list", "--pack", EXAMPLES_DIR]) == 0
    finally:
        unregister_pack(EXAMPLES_DIR)
    out = capsys.readouterr().out
    assert "/examples/bounded-stack" in out
    assert "Pack" in out and "modules" in out
