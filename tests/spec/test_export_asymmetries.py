"""Regressions for exporter/loader asymmetries the module generator exposed.

Three bugs found by fuzzing the export -> load cycle, each pinned here:

* carriage returns in quoted strings had no lexer escape, so a description
  containing ``\\r`` desynchronized line accounting and failed to reload;
* the rendered header comment interpolated names/descriptions verbatim, so a
  description containing ``*)`` terminated the comment early;
* the loader kept the rendered header comment inside the reconstructed
  source, so every render -> load cycle *prepended another copy* - reloading
  an exported file repeatedly grew its source without bound.
"""

import glob
import os

from repro.spec import load_module_file, load_module_text, render_module

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "modules")


def _module_text(description: str) -> str:
    return f'''\
benchmark "/test/asym"
group test
description "{description}"

abstract type t = nat

operation zero : t
operation tick : t -> t
spec spec : t -> bool

let zero : nat = O

let tick (n : nat) : nat = S n

let spec (n : nat) : bool = True
'''


def _cycle(definition):
    return load_module_text(render_module(definition), path=definition.name)


def test_carriage_return_in_description_round_trips():
    definition = load_module_text(_module_text(r"first\rsecond"))
    assert definition.description == "first\rsecond"
    reloaded = _cycle(definition)
    assert reloaded.description == "first\rsecond"
    assert render_module(reloaded) == render_module(definition)


def test_comment_closer_in_description_round_trips():
    definition = load_module_text(_module_text("evil *) and (* nested"))
    rendered = render_module(definition)
    # The header stays one well-formed comment: its text cannot close early.
    header = rendered.splitlines()[0]
    assert header.startswith("(*") and header.endswith("*)")
    assert "*)" not in header[2:-2]
    reloaded = load_module_text(rendered, path="/test/asym")
    assert reloaded.description == "evil *) and (* nested"


def test_repeated_cycles_do_not_accumulate_headers():
    definition = load_module_text(_module_text("a plain description"))
    once = _cycle(definition)
    line_count = len(render_module(once).splitlines())
    current = once
    for _ in range(3):
        current = _cycle(current)
        assert len(render_module(current).splitlines()) == line_count
    assert render_module(current) == render_module(once)


def test_example_files_render_to_a_fixed_point():
    paths = sorted(glob.glob(os.path.join(EXAMPLES_DIR, "*.hanoi")))
    assert paths, "no example modules found"
    for path in paths:
        definition = load_module_file(path)
        once = render_module(definition)
        twice = render_module(load_module_text(once, path=path))
        assert once == twice, path
