"""Benchmark packs and their integration with the experiment stack.

A pack (directory of ``.hanoi`` files) must register alongside the built-in
suite so that the registry, ``expand_tasks``, the serial executor, and the
result store all work on it unchanged - and unregistering must restore the
registry exactly.
"""

import json

import pytest

from repro.core.result import InferenceResult, Status
from repro.core.stats import InferenceStats
from repro.experiments.runner import execute_task, expand_tasks
from repro.experiments.store import ResultStore
from repro.spec import SpecFileError, load_pack, register_pack, unregister_pack
from repro.suite import registry

COUNTER = """
benchmark "/pack/counter"
group counters

abstract type t = nat

operation zero : t
operation incr : t -> t

spec spec : t -> bool

let zero : nat = O
let incr (c : nat) : nat = S c
let spec (c : nat) : bool = True
"""

TOGGLE = """
benchmark "/pack/toggle"
group toggles

abstract type t = bool

operation off : t
operation flip : t -> t

spec spec : t -> bool

let off : bool = False
let flip (b : bool) : bool = notb b
let spec (b : bool) : bool = orb b (notb b)
"""


@pytest.fixture
def pack_dir(tmp_path):
    directory = tmp_path / "mypack"
    directory.mkdir()
    (directory / "counter.hanoi").write_text(COUNTER)
    (directory / "toggle.hanoi").write_text(TOGGLE)
    return str(directory)


@pytest.fixture
def registered(pack_dir):
    pack = register_pack(pack_dir)
    try:
        yield pack
    finally:
        unregister_pack(pack_dir)


def test_load_pack_reads_every_file(pack_dir):
    pack = load_pack(pack_dir)
    assert pack.name == "mypack"
    assert pack.benchmark_names == ["/pack/counter", "/pack/toggle"]
    assert pack.definitions["/pack/counter"].group == "counters"


def test_load_pack_rejects_missing_directory(tmp_path):
    with pytest.raises(SpecFileError):
        load_pack(str(tmp_path / "absent"))


def test_load_pack_rejects_empty_directory(tmp_path):
    with pytest.raises(SpecFileError):
        load_pack(str(tmp_path))


def test_load_pack_rejects_duplicate_benchmark_names(tmp_path):
    (tmp_path / "a.hanoi").write_text(COUNTER)
    (tmp_path / "b.hanoi").write_text(COUNTER)
    with pytest.raises(SpecFileError) as excinfo:
        load_pack(str(tmp_path))
    assert "both" in excinfo.value.reason


def test_register_pack_installs_and_unregister_restores(pack_dir):
    before_benchmarks = dict(registry.BENCHMARKS)
    before_groups = {group: list(names) for group, names in registry.GROUPS.items()}
    before_fast = list(registry.FAST_BENCHMARKS)

    pack = register_pack(pack_dir)
    try:
        assert "/pack/counter" in registry.BENCHMARKS
        assert registry.get_benchmark("/pack/counter").name == "/pack/counter"
        assert "/pack/counter" in registry.GROUPS["counters"]
        assert registry.benchmark_group("/pack/toggle") == "toggles"
        # Pack benchmarks join the fast subset so default sweeps include them.
        assert "/pack/counter" in registry.FAST_BENCHMARKS
        # Idempotent: registering the same directory again is a no-op.
        assert register_pack(pack_dir) is pack
    finally:
        unregister_pack(pack_dir)

    assert registry.BENCHMARKS == before_benchmarks
    assert {g: list(n) for g, n in registry.GROUPS.items()} == before_groups
    assert registry.FAST_BENCHMARKS == before_fast


def test_register_pack_rejects_name_collision_with_builtin(tmp_path):
    text = COUNTER.replace('"/pack/counter"', '"/coq/unique-list-::-set"')
    (tmp_path / "clash.hanoi").write_text(text)
    with pytest.raises(ValueError):
        register_pack(str(tmp_path))
    # The failed registration must not leave partial state behind.
    assert "/pack/counter" not in registry.BENCHMARKS


def test_tasks_resolve_pack_benchmarks(registered):
    tasks = expand_tasks(registered.benchmark_names, modes="oneshot",
                         pack=registered.path)
    assert [t.benchmark for t in tasks] == ["/pack/counter", "/pack/toggle"]
    assert all(t.pack == registered.path for t in tasks)
    result = execute_task(tasks[0])
    assert result.benchmark == "/pack/counter"


def test_execute_task_registers_pack_on_demand(pack_dir):
    # Simulates a spawn-context worker: the registry has never seen the pack.
    unregister_pack(pack_dir)
    task = expand_tasks(["/pack/toggle"], modes="oneshot", pack=pack_dir)[0]
    try:
        result = execute_task(task)
        assert result.benchmark == "/pack/toggle"
    finally:
        unregister_pack(pack_dir)


def _result(benchmark):
    return InferenceResult(benchmark=benchmark, mode="hanoi",
                           status=Status.SUCCESS, invariant=None,
                           stats=InferenceStats())


def test_store_tags_pack_results(tmp_path):
    path = str(tmp_path / "results.jsonl")
    store = ResultStore(path, pack="mypack",
                        pack_benchmarks=["/pack/counter"])
    store.append(_result("/pack/counter"))
    store.append(_result("/coq/unique-list-::-set"))

    records = [json.loads(line) for line in open(path, encoding="utf-8")]
    assert records[0]["pack"] == "mypack"
    assert "pack" not in records[1]

    by_name = {r.benchmark: r for r in store.load()}
    assert by_name["/pack/counter"].pack == "mypack"
    assert by_name["/coq/unique-list-::-set"].pack is None


def test_store_without_pack_is_untagged(tmp_path):
    path = str(tmp_path / "results.jsonl")
    ResultStore(path).append(_result("/pack/counter"))
    record = json.loads(open(path, encoding="utf-8").read())
    assert "pack" not in record
