"""Golden round-trip: every built-in benchmark survives export -> load.

``repro.spec.export`` renders each of the 28 suite benchmarks to the
``.hanoi`` text format and ``repro.spec.loader`` reads it back; the reloaded
definition must present the identical interface (operations, signatures,
specification, synthesis metadata) and the identical *behaviour*: on a sample
of enumerated values, every operation and the specification compute the same
results in the original and the reloaded module.
"""

import itertools

import pytest

from repro.enumeration.values import ValueEnumerator
from repro.lang.types import TArrow, arrow, substitute_abstract
from repro.spec import load_module_text, render_module
from repro.suite.registry import all_benchmark_names, get_benchmark

ALL_NAMES = all_benchmark_names()

#: Per-argument sample size and cap on argument tuples per function, keeping
#: the 28-benchmark sweep fast while still exercising every operation.
VALUES_PER_ARG = 4
MAX_CALLS = 24

#: Stand-in values for functional arguments (higher-order operations).
FUNCTION_WITNESSES = {
    "nat -> nat": "succ",
    "nat -> bool": "is_zero",
}


def reload(definition):
    return load_module_text(render_module(definition), path=definition.name)


@pytest.fixture(scope="module")
def reloaded():
    cache = {}

    def get(name):
        if name not in cache:
            cache[name] = (get_benchmark(name), reload(get_benchmark(name)))
        return cache[name]

    return get


@pytest.mark.parametrize("name", ALL_NAMES)
def test_interface_round_trips(name, reloaded):
    original, loaded = reloaded(name)
    assert loaded.name == original.name
    assert loaded.group == original.group
    assert loaded.description == original.description
    assert loaded.concrete_type == original.concrete_type
    assert loaded.operations == original.operations
    assert loaded.spec_name == original.spec_name
    assert loaded.spec_signature == original.spec_signature
    assert loaded.synthesis_components == original.synthesis_components
    assert loaded.helper_functions == original.helper_functions
    assert bool(loaded.expected_invariant) == bool(original.expected_invariant)


def sample_arguments(program, enumerator, concrete_args):
    """Small tuples of sample values (or prelude functions) per signature."""
    pools = []
    for arg_type in concrete_args:
        if isinstance(arg_type, TArrow):
            witness = FUNCTION_WITNESSES.get(str(arrow(arg_type.arg, arg_type.result)).strip("()"))
            if witness is None:
                return  # no witness for this functional argument shape
            pools.append([program.global_value(witness)])
        else:
            pools.append(enumerator.smallest(arg_type, VALUES_PER_ARG))
    yield from itertools.islice(itertools.product(*pools), MAX_CALLS)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_behaviour_round_trips(name, reloaded):
    original, loaded = reloaded(name)
    instance_a = original.instantiate()
    instance_b = loaded.instantiate()
    enumerator = ValueEnumerator(instance_a.program.types)

    checked = 0
    for op in original.operations:
        assert (instance_a.program.global_type(op.name)
                == instance_b.program.global_type(op.name))
        concrete_args = [substitute_abstract(t, original.concrete_type)
                         for t in op.argument_types]
        for args in sample_arguments(instance_a.program, enumerator, concrete_args):
            assert (instance_a.program.call(op.name, *args)
                    == instance_b.program.call(op.name, *args)), (
                f"{name}: operation {op.name} disagrees on {args}")
            checked += 1

    spec_args = [substitute_abstract(t, original.concrete_type)
                 for t in original.spec_signature]
    for args in sample_arguments(instance_a.program, enumerator, spec_args):
        assert (instance_a.call_spec(*args) == instance_b.call_spec(*args)), (
            f"{name}: specification disagrees on {args}")
        checked += 1
    assert checked > 0, f"{name}: no behaviour samples were exercised"
