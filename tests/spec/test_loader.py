"""Loader tests for the ``.hanoi`` benchmark definition format.

Two halves: well-formed files load into the expected
:class:`~repro.core.module.ModuleDefinition`, and every class of malformed
input is rejected with a :class:`~repro.spec.errors.SpecFileError` carrying
the offending line number - never a traceback from a lower layer.
"""

import os

import pytest

from repro.core.module import ModuleDefinition
from repro.lang.prelude import DEFAULT_SYNTHESIS_COMPONENTS
from repro.lang.types import TAbstract, TData, TProd, arrow
from repro.spec import SpecFileError, load_module_file, load_module_text

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "modules")

GOOD = """
benchmark "/test/counter"
group testing
description "A counter that only counts up."

abstract type t = nat

operation zero : t
operation incr : t -> t
operation get : t -> nat

spec spec : t -> bool

components is_zero

let zero : nat = O
let incr (c : nat) : nat = S c
let get (c : nat) : nat = c
let spec (c : nat) : bool = True

expected invariant
let expected (c : nat) : bool = True
"""


def test_good_file_loads():
    definition = load_module_text(GOOD, path="good.hanoi")
    assert isinstance(definition, ModuleDefinition)
    assert definition.name == "/test/counter"
    assert definition.group == "testing"
    assert definition.description == "A counter that only counts up."
    assert definition.concrete_type == TData("nat")
    assert [op.name for op in definition.operations] == ["zero", "incr", "get"]
    assert definition.operations[1].signature == arrow(TAbstract(), TAbstract())
    assert definition.operations[2].signature == arrow(TAbstract(), TData("nat"))
    assert definition.spec_name == "spec"
    assert definition.spec_signature == (TAbstract(),)
    assert definition.synthesis_components == tuple(
        list(DEFAULT_SYNTHESIS_COMPONENTS) + ["is_zero"])
    assert "let expected" in definition.expected_invariant
    definition.instantiate()  # the reconstructed source must load


def test_source_preserves_line_numbers():
    definition = load_module_text(GOOD, path="good.hanoi")
    # Directive lines are blanked, not removed: the declarations sit on the
    # same lines as in the original text.
    original_line = GOOD.splitlines().index("let zero : nat = O")
    assert definition.source.splitlines()[original_line] == "let zero : nat = O"


def test_defaults_when_directives_omitted():
    minimal = """
abstract type t = nat
operation zero : t
spec spec : t -> bool
let zero : nat = O
let spec (c : nat) : bool = True
"""
    definition = load_module_text(minimal, name="fallback")
    assert definition.name == "fallback"
    assert definition.group == "custom"
    assert definition.description == ""
    assert definition.expected_invariant is None


def test_load_module_file_uses_stem_as_fallback_name(tmp_path):
    path = tmp_path / "counter.hanoi"
    path.write_text("""
abstract type t = nat
operation zero : t
spec spec : t -> bool
let zero : nat = O
let spec (c : nat) : bool = True
""")
    assert load_module_file(str(path)).name == "counter"


def test_product_concrete_type():
    source = """
abstract type t = nat * bool
operation make : nat -> t
spec spec : t -> bool
let make (n : nat) : nat * bool = (n, True)
let spec (c : nat * bool) : bool = True
"""
    definition = load_module_text(source)
    assert definition.concrete_type == TProd((TData("nat"), TData("bool")))


def test_example_files_load():
    for filename in sorted(os.listdir(EXAMPLES_DIR)):
        definition = load_module_file(os.path.join(EXAMPLES_DIR, filename))
        definition.instantiate()
        assert definition.group == "examples"


# -- diagnostics ----------------------------------------------------------------


def error_for(text, path="bad.hanoi"):
    with pytest.raises(SpecFileError) as excinfo:
        load_module_text(text, path=path)
    return excinfo.value


def test_missing_file_is_a_spec_error(tmp_path):
    with pytest.raises(SpecFileError):
        load_module_file(str(tmp_path / "nope.hanoi"))


def test_unknown_directive_names_line():
    error = error_for("abstract type t = nat\nfrobnicate all the things\n")
    assert error.line == 2
    assert "frobnicate" in error.reason


def test_lex_error_is_wrapped():
    error = error_for("abstract type t = nat\nlet x = $\n")
    assert error.line == 2


def test_parse_error_is_wrapped():
    error = error_for("operation : t\n")
    assert error.line == 1


def test_missing_abstract_type():
    error = error_for("operation zero : t\nspec spec : t -> bool\n"
                      "let zero : nat = O\nlet spec (c : nat) : bool = True\n")
    assert "abstract type" in error.reason


def test_duplicate_abstract_type():
    error = error_for("abstract type t = nat\nabstract type u = bool\n")
    assert error.line == 2
    assert "duplicate" in error.reason


def test_alias_colliding_with_datatype():
    error = error_for("""abstract type list = list
operation zero : list
spec spec : list -> bool
type list = Nil | Cons of nat * list
let zero : list = Nil
let spec (c : list) : bool = True
""")
    assert error.line == 1
    assert "collides" in error.reason


def test_unknown_concrete_type():
    error = error_for("abstract type t = queue\n"
                      "operation zero : t\nspec spec : t -> bool\n"
                      "let zero : nat = O\nlet spec (c : nat) : bool = True\n")
    assert error.line == 1
    assert "queue" in error.reason


def test_unknown_operation_names_line():
    error = error_for("""abstract type t = nat
operation zero : t
operation missing : t -> t
spec spec : t -> bool
let zero : nat = O
let spec (c : nat) : bool = True
""")
    assert error.line == 3
    assert "missing" in error.reason


def test_operation_signature_must_mention_abstract_type():
    error = error_for("""abstract type t = nat
operation zero : t
operation stray : nat -> nat
spec spec : t -> bool
let zero : nat = O
let stray (n : nat) : nat = n
let spec (c : nat) : bool = True
""")
    assert error.line == 3
    assert "does not mention the abstract type" in error.reason


def test_operation_signature_must_match_definition():
    error = error_for("""abstract type t = nat
operation zero : t
operation incr : t -> t -> t
spec spec : t -> bool
let zero : nat = O
let incr (c : nat) : nat = S c
let spec (c : nat) : bool = True
""")
    assert error.line == 3
    assert "incr" in error.reason and "definition has type" in error.reason


def test_ill_typed_operation_anchors_to_declaration():
    error = error_for("""abstract type t = nat
operation zero : t
spec spec : t -> bool
let zero : nat = O
let broken (c : nat) : nat = andb c
let spec (c : nat) : bool = True
""")
    assert error.line == 5
    assert "broken" in error.reason


def test_unknown_spec_names_line():
    error = error_for("""abstract type t = nat
operation zero : t
spec sorted : t -> bool
let zero : nat = O
""")
    assert error.line == 3
    assert "sorted" in error.reason and "not found" in error.reason


def test_spec_must_return_bool():
    error = error_for("""abstract type t = nat
operation zero : t
spec spec : t -> nat
let zero : nat = O
let spec (c : nat) : nat = c
""")
    assert error.line == 3
    assert "must return bool" in error.reason


def test_spec_must_mention_abstract_type():
    error = error_for("""abstract type t = nat
operation zero : t
spec spec : bool -> bool
let zero : nat = O
let spec (b : bool) : bool = b
""")
    assert error.line == 3


def test_unknown_component_names_line():
    error = error_for("""abstract type t = nat
operation zero : t
spec spec : t -> bool
components ghost
let zero : nat = O
let spec (c : nat) : bool = True
""")
    assert error.line == 4
    assert "ghost" in error.reason


def test_missing_spec_directive():
    error = error_for("abstract type t = nat\noperation zero : t\n"
                      "let zero : nat = O\n")
    assert "spec" in error.reason


def test_no_operations():
    error = error_for("abstract type t = nat\nspec spec : t -> bool\n"
                      "let spec (c : nat) : bool = True\n")
    assert "operation" in error.reason


def test_duplicate_operation():
    error = error_for("""abstract type t = nat
operation zero : t
operation zero : t
spec spec : t -> bool
let zero : nat = O
let spec (c : nat) : bool = True
""")
    assert error.line == 3
    assert "duplicate" in error.reason


def test_spec_defined_only_in_expected_block_rejected():
    # A copy-paste slip: the spec lives in the oracle block, which is never
    # loaded into the runnable module.  The loader must catch this, not let
    # inference crash later.
    error = error_for("""abstract type t = nat
operation zero : t
spec spec : t -> bool
let zero : nat = O
expected invariant
let spec (c : nat) : bool = True
""")
    assert "not found" in error.reason


def test_operation_defined_only_in_expected_block_rejected():
    error = error_for("""abstract type t = nat
operation zero : t
operation incr : t -> t
spec spec : t -> bool
let zero : nat = O
let spec (c : nat) : bool = True
expected invariant
let incr (c : nat) : nat = S c
""")
    assert error.line == 3
    assert "incr" in error.reason


def test_empty_expected_block():
    error = error_for("""abstract type t = nat
operation zero : t
spec spec : t -> bool
let zero : nat = O
let spec (c : nat) : bool = True
expected invariant
""")
    assert "no declarations" in error.reason


def test_directive_after_expected_block_rejected():
    error = error_for("""abstract type t = nat
operation zero : t
spec spec : t -> bool
let zero : nat = O
let spec (c : nat) : bool = True
expected invariant
let expected (c : nat) : bool = True
group late
""")
    assert error.line == 8


def test_benchmark_directive_requires_string():
    error = error_for("benchmark bare_name\n")
    assert error.line == 1
    assert "double-quoted" in error.reason


def test_errors_render_with_path_and_line():
    error = error_for("frobnicate\n", path="pack/thing.hanoi")
    assert str(error).startswith("pack/thing.hanoi:1: ")
