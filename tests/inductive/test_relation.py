"""Unit tests for conditional / visible / full inductiveness checking."""

import pytest

from repro.core.config import FAST_VERIFIER_BOUNDS
from repro.core.predicate import Predicate, always_true
from repro.inductive.relation import ConditionalInductivenessChecker
from repro.lang.values import list_of_value
from repro.suite.registry import get_benchmark
from repro.verify.result import InductivenessCounterexample, Valid


@pytest.fixture(scope="module")
def listset():
    return get_benchmark("/coq/unique-list-::-set").instantiate()


@pytest.fixture(scope="module")
def checker(listset):
    return ConditionalInductivenessChecker(listset, bounds=FAST_VERIFIER_BOUNDS)


@pytest.fixture(scope="module")
def nodup(listset):
    return Predicate.from_source(
        get_benchmark("/coq/unique-list-::-set").expected_invariant, listset.program
    )


def test_trivial_invariant_is_fully_inductive(listset, checker):
    trivial = always_true(listset.concrete_type, listset.program)
    assert isinstance(checker.check(trivial, trivial), Valid)


def test_no_duplicates_is_fully_inductive(checker, nodup):
    assert isinstance(checker.check(nodup, nodup), Valid)


def test_paper_motivating_visible_counterexample(listset, checker):
    """Section 2.1: with V+ = {[]} the candidate ``hd <> 1`` is not visibly
    inductive; the counterexample is <[], [1]>."""
    candidate = Predicate.from_source("""
let cand (l : list) : bool =
  match l with
  | Nil -> True
  | Cons (hd, tl) -> notb (nat_eq hd 1)
""", listset.program)
    vplus = {listset.program.global_value("empty")}
    result = checker.check(p=lambda v: v in vplus, q=candidate, p_pool=vplus)
    assert isinstance(result, InductivenessCounterexample)
    assert result.operation == "insert"
    assert set(result.inputs) <= vplus
    (output,) = result.outputs
    assert [str(v) for v in list_of_value(output)] == ["1"]


def test_visible_check_with_empty_pool_passes(listset, checker):
    """With no known constructible values, only nullary operations are
    constrained; ``empty`` satisfies any candidate accepting []."""
    candidate = always_true(listset.concrete_type, listset.program)
    result = checker.check(p=lambda v: False, q=candidate, p_pool=set())
    assert isinstance(result, Valid)


def test_nullary_operation_produces_counterexample(listset, checker):
    """A candidate rejecting [] is refuted by ``empty`` even with V+ = {}."""
    rejects_nil = Predicate.from_source("""
let cand (l : list) : bool =
  match l with
  | Nil -> False
  | Cons (hd, tl) -> True
""", listset.program)
    result = checker.check(p=lambda v: False, q=rejects_nil, p_pool=set())
    assert isinstance(result, InductivenessCounterexample)
    assert result.operation == "empty"
    assert result.inputs == ()


def test_full_inductiveness_counterexample_structure(listset, checker):
    """The paper's example non-inductive candidate ``hd <> 1``: a full check
    returns inputs that satisfy the candidate and outputs that falsify it."""
    candidate = Predicate.from_source("""
let cand (l : list) : bool =
  match l with
  | Nil -> True
  | Cons (hd, tl) -> notb (nat_eq hd 1)
""", listset.program)
    result = checker.check(p=candidate, q=candidate, p_pool=None)
    assert isinstance(result, InductivenessCounterexample)
    assert all(candidate(v) for v in result.inputs)
    assert all(not candidate(v) for v in result.outputs)


def test_higher_order_operations_are_checked_via_contracts():
    """The +hofs benchmark's map/filter operations run under contracts; the
    expected invariant remains fully inductive."""
    definition = get_benchmark("/coq/unique-list-::-set+hofs")
    instance = definition.instantiate()
    checker = ConditionalInductivenessChecker(instance, bounds=FAST_VERIFIER_BOUNDS)
    nodup = Predicate.from_source(definition.expected_invariant, instance.program)
    assert isinstance(checker.check(nodup, nodup), Valid)


def test_binary_operations_counterexample_collects_both_inputs():
    """For a binary operation, the witness set S may contain several inputs
    (Section 2.2)."""
    definition = get_benchmark("/coq/sorted-list-::-set+binfuncs")
    instance = definition.instantiate()
    checker = ConditionalInductivenessChecker(instance, bounds=FAST_VERIFIER_BOUNDS)
    # "The first element is at most 1" is sufficient-ish but not inductive;
    # union of two such lists can break it.
    candidate = Predicate.from_source("""
let cand (l : list) : bool =
  match l with
  | Nil -> True
  | Cons (hd, tl) -> nat_leq hd 1
""", instance.program)
    result = checker.check(p=candidate, q=candidate, p_pool=None)
    assert isinstance(result, InductivenessCounterexample)
    assert len(result.inputs) >= 1
    assert all(candidate(v) for v in result.inputs)
