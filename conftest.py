"""Ensure the in-tree sources are importable when the package has not been
installed (for example on offline machines where ``pip install -e .`` cannot
build an editable wheel).  When the package is installed, the installed copy
shadows nothing because it points at the same ``src`` directory."""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
