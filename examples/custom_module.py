#!/usr/bin/env python3
"""Inferring an invariant for a user-defined module loaded from a file.

The paper's workflow starts from a module + specification the *user* wrote;
this example shows the file-based frontend for that workflow.  The scenario -
a stack capped at three elements - is not part of the paper's 28-benchmark
suite: it lives in ``examples/modules/bounded-stack.hanoi``, a benchmark
definition file in the format documented in ``docs/format.md``.

The same file also drives the CLI directly::

    python -m repro infer examples/modules/bounded-stack.hanoi

Run from the repository root (or anywhere, with the package installed)::

    PYTHONPATH=src python examples/custom_module.py
"""

import os

from repro import HanoiConfig, infer_invariant, load_module_file
from repro.core.config import FAST_VERIFIER_BOUNDS

MODULES_DIR = os.path.join(os.path.dirname(__file__), "modules")


def main() -> None:
    path = os.path.join(MODULES_DIR, "bounded-stack.hanoi")
    definition = load_module_file(path)

    print(f"loaded {definition.name} from {os.path.relpath(path)}")
    print(f"  group:       {definition.group}")
    print(f"  operations:  {', '.join(op.name for op in definition.operations)}")
    print(f"  description: {definition.description}")
    print()

    config = HanoiConfig(verifier_bounds=FAST_VERIFIER_BOUNDS, timeout_seconds=60)
    result = infer_invariant(definition, config)

    print(f"status: {result.status} "
          f"(size {result.invariant_size}, {result.stats.total_time:.1f}s)")
    print()
    print("Inferred representation invariant:")
    print(result.render_invariant())


if __name__ == "__main__":
    main()
