#!/usr/bin/env python3
"""Quickstart: the paper's motivating example (Section 2).

A module implements SET as an integer list; the specification demands the
usual set behaviour of ``insert`` / ``delete`` / ``lookup``.  Hanoi infers the
*no duplicates* representation invariant::

    let rec inv (x : list) : bool =
      match x with
      | Nil -> True
      | Cons (hd, tl) -> andb (notb (lookup tl hd)) (inv tl)

This example builds the module definition from scratch (rather than loading
it from the benchmark suite) to show the full public API surface: writing a
module in the object language, declaring its interface and specification, and
running the inference loop.
"""

from repro import ModuleDefinition, Operation
from repro.experiments import ResultStore, quick_config, run_module
from repro.lang.types import TAbstract, TData, arrow

LIST_SET_SOURCE = """
type list = Nil | Cons of nat * list

let empty : list = Nil

let rec lookup (l : list) (x : nat) : bool =
  match l with
  | Nil -> False
  | Cons (hd, tl) -> orb (nat_eq hd x) (lookup tl x)

let insert (l : list) (x : nat) : list =
  if lookup l x then l else Cons (x, l)

let rec delete (l : list) (x : nat) : list =
  match l with
  | Nil -> Nil
  | Cons (hd, tl) -> (if nat_eq hd x then tl else Cons (hd, delete tl x))

let spec (s : list) (i : nat) : bool =
  andb (notb (lookup empty i))
    (andb (lookup (insert s i) i) (notb (lookup (delete s i) i)))
"""


def build_list_set() -> ModuleDefinition:
    """The ListSet module of Figure 1 with the SET specification of Section 2."""
    abstract = TAbstract()
    nat = TData("nat")
    boolean = TData("bool")
    return ModuleDefinition(
        name="quickstart/list-set",
        group="examples",
        source=LIST_SET_SOURCE,
        concrete_type=TData("list"),
        operations=(
            Operation("empty", abstract),
            Operation("insert", arrow(abstract, nat, abstract)),
            Operation("delete", arrow(abstract, nat, abstract)),
            Operation("lookup", arrow(abstract, nat, boolean)),
        ),
        spec_name="spec",
        spec_signature=(abstract, nat),
        synthesis_components=("notb", "andb", "orb", "nat_eq", "nat_leq", "lookup"),
        description="Integer-list set from the paper's motivating example.",
    )


def main() -> None:
    module = build_list_set()
    print(f"Inferring a representation invariant for {module.name} ...")
    # run_module is the same dispatch point `python -m repro run` goes through;
    # hand-built modules and registered benchmarks take an identical path.
    result = run_module(module, mode="hanoi", config=quick_config(120))

    print(f"\nstatus     : {result.status}")
    print(f"iterations : {result.iterations}")
    print(f"size       : {result.invariant_size}")
    print(f"time       : {result.stats.total_time:.2f}s "
          f"(verification {result.stats.verification_time:.2f}s over "
          f"{result.stats.verification_calls} calls, "
          f"synthesis {result.stats.synthesis_time:.2f}s over "
          f"{result.stats.synthesis_calls} calls)")
    print("\ninferred invariant:\n")
    print(result.render_invariant())

    store = ResultStore("results/quickstart.jsonl")
    store.append(result)
    print(f"\nresult persisted to {store.path} "
          f"(re-render any time with: python -m repro report {store.path})")


if __name__ == "__main__":
    main()
