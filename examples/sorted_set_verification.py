#!/usr/bin/env python3
"""Scenario: verifying a sorted-list set module, including binary operations.

This example exercises the benchmark-suite API on the ``sorted-list`` family:

1. infer the *ordered* invariant for the plain sorted-list set;
2. infer it again for the ``+binfuncs`` variant, whose specification is the
   n-ary property of Section 2.2 (union and intersection constraints over two
   abstract values);
3. check the inferred invariant against the hand-written oracle invariant
   shipped with the benchmark (bounded extensional comparison), mirroring the
   paper's claim that the inferred invariants are correct.
"""

from repro import HanoiConfig, Predicate, get_benchmark, infer_invariant
from repro.core.config import FAST_VERIFIER_BOUNDS
from repro.enumeration import ValueEnumerator


def check_against_oracle(result, definition) -> None:
    """Compare the inferred invariant with the benchmark's oracle invariant on
    every concrete value up to a size bound."""
    instance = definition.instantiate()
    oracle = Predicate.from_source(definition.expected_invariant, instance.program)
    inferred = result.invariant
    enumerator = ValueEnumerator(instance.program.types)

    agreements = disagreements = 0
    for value in enumerator.enumerate(definition.concrete_type, max_size=13, max_count=400):
        if oracle(value) == inferred(value):
            agreements += 1
        else:
            disagreements += 1
    print(f"  oracle comparison: {agreements} agreements, {disagreements} disagreements "
          "(disagreements are possible: distinct invariants can both be sufficient)")


def run(name: str) -> None:
    definition = get_benchmark(name)
    print(f"=== {name} ===")
    result = infer_invariant(
        definition,
        HanoiConfig(verifier_bounds=FAST_VERIFIER_BOUNDS, timeout_seconds=120),
    )
    print(f"  status: {result.status}   size: {result.invariant_size}   "
          f"time: {result.stats.total_time:.2f}s   iterations: {result.iterations}")
    if result.succeeded:
        print("\n".join("  " + line for line in result.render_invariant().splitlines()))
        check_against_oracle(result, definition)
    print()


def main() -> None:
    run("/coq/sorted-list-::-set")
    run("/coq/sorted-list-::-set+binfuncs")


if __name__ == "__main__":
    main()
