#!/usr/bin/env python3
"""Scenario: comparing Hanoi against the prior-work baselines (Figure 8).

Runs Hanoi, the two ablations (Hanoi-SRC, Hanoi-CLC), and the three baselines
(∧Str, LA, OneShot) over a handful of benchmarks and prints a per-mode
summary - a miniature of the paper's Figure 8 comparison, whose qualitative
shape (Hanoi solves the most with the fewest synthesis and verification
calls; ∧Str and LA lag; OneShot almost always fails) should be visible even
on this small subset.
"""

from repro.experiments import FIGURE8_MODES, format_table, mode_summary, quick_config, run_figure8

BENCHMARKS = [
    "/coq/unique-list-::-set",
    "/coq/maxfirst-list-::-heap",
    "/other/sized-list",
    "/other/nat-nat-option-::-range",
]


def main() -> None:
    config = quick_config(timeout_seconds=60)

    def progress(result):
        print(f"  [{result.mode:17s}] {result.benchmark:40s} {result.status:18s} "
              f"synth={result.stats.synthesis_calls:3d} verify={result.stats.verification_calls:3d} "
              f"time={result.stats.total_time:5.1f}s")

    results = run_figure8(BENCHMARKS, modes=FIGURE8_MODES, config=config, progress=progress)

    print("\nPer-mode summary:")
    print(format_table(
        ["Mode", "Solved", "Benchmarks", "Mean solve time (s)", "Total time (s)"],
        mode_summary(results),
    ))


if __name__ == "__main__":
    main()
