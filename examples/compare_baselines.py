#!/usr/bin/env python3
"""Scenario: comparing Hanoi against the prior-work baselines (Figure 8).

Runs Hanoi, the two ablations (Hanoi-SRC, Hanoi-CLC), and the three baselines
(∧Str, LA, OneShot) over a handful of benchmarks and prints a per-mode
summary - a miniature of the paper's Figure 8 comparison, whose qualitative
shape (Hanoi solves the most with the fewest synthesis and verification
calls; ∧Str and LA lag; OneShot almost always fails) should be visible even
on this small subset.

The sweep goes through the same shared machinery as ``python -m repro
figure8``: the ``(benchmark, mode)`` tasks are expanded once, fanned out over
a :class:`~repro.experiments.parallel.ParallelRunner` process pool, and every
result is persisted to JSONL as it completes - so an interrupted run can be
inspected (or re-rendered) with ``python -m repro report``.
"""

import os

from repro.experiments import (
    FIGURE8_MODES,
    MODE_SUMMARY_HEADERS,
    ParallelRunner,
    ResultStore,
    expand_tasks,
    format_table,
    group_by_mode,
    mode_summary_rows,
    quick_config,
)

BENCHMARKS = [
    "/coq/unique-list-::-set",
    "/coq/maxfirst-list-::-heap",
    "/other/sized-list",
    "/other/nat-nat-option-::-range",
]

OUTPUT = "results/compare_baselines.jsonl"


def main() -> None:
    config = quick_config(timeout_seconds=60)
    tasks = expand_tasks(BENCHMARKS, modes=FIGURE8_MODES, config=config)
    store = ResultStore(OUTPUT)

    def progress(result):
        print(f"  [{result.mode:17s}] {result.benchmark:40s} {result.status:18s} "
              f"synth={result.stats.synthesis_calls:3d} verify={result.stats.verification_calls:3d} "
              f"time={result.stats.total_time:5.1f}s")

    jobs = os.cpu_count() or 1
    print(f"running {len(tasks)} (benchmark, mode) tasks over {jobs} workers ...")
    results = ParallelRunner(jobs=jobs).run(tasks, progress=progress, store=store)

    print("\nPer-mode summary:")
    print(format_table(MODE_SUMMARY_HEADERS, mode_summary_rows(group_by_mode(results))))

    print(f"\nresults persisted to {store.path} "
          f"(re-render any time with: python -m repro report {store.path})")


if __name__ == "__main__":
    main()
