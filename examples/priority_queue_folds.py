#!/usr/bin/env python3
"""Scenario: the binary-heap priority queue and the fold-capable synthesizer.

Section 5.4 of the paper observes that Myth cannot synthesize the heap
invariant for ``/vfa/tree-::-priqueue`` unless a ``true_maximum`` helper
function is added to the module (the starred benchmarks), whereas the
authors' fold-capable prototype synthesizer can manage without it.

This example reproduces that comparison:

1. run the standard (Myth-like) synthesizer on the starred benchmark, which
   includes the ``true_maximum`` helper;
2. run the fold-capable synthesizer on a copy of the benchmark with the
   helper removed - the derived ``fold_max`` component takes its place.
"""

from dataclasses import replace

from repro import FoldSynthesizer, HanoiConfig, get_benchmark
from repro.core import HanoiInference
from repro.core.config import FAST_VERIFIER_BOUNDS


def run_with_helper() -> None:
    definition = get_benchmark("/vfa/tree-::-priqueue*")
    config = HanoiConfig(verifier_bounds=FAST_VERIFIER_BOUNDS, timeout_seconds=180)
    result = HanoiInference(definition, config=config).infer()
    print("=== Myth-like synthesizer, with the true_maximum helper (starred benchmark) ===")
    print(f"  status: {result.status}   size: {result.invariant_size}   "
          f"time: {result.stats.total_time:.2f}s")
    if result.succeeded:
        print("\n".join("  " + line for line in result.render_invariant().splitlines()))
    print()


def run_with_folds() -> None:
    definition = get_benchmark("/vfa/tree-::-priqueue*")
    # Remove the helper from the synthesizer's component set: the fold
    # synthesizer must manage with its derived aggregates instead.
    stripped = replace(
        definition,
        helper_functions=(),
        synthesis_components=tuple(
            name for name in definition.synthesis_components if name != "true_maximum"
        ),
    )
    config = HanoiConfig(verifier_bounds=FAST_VERIFIER_BOUNDS, timeout_seconds=180)
    result = HanoiInference(stripped, config=config, synthesizer_factory=FoldSynthesizer,
                            mode_name="hanoi-fold").infer()
    print("=== Fold-capable synthesizer, helper removed (Section 5.4) ===")
    print(f"  status: {result.status}   size: {result.invariant_size}   "
          f"time: {result.stats.total_time:.2f}s")
    if result.succeeded:
        print("\n".join("  " + line for line in result.render_invariant().splitlines()))
    print()


def main() -> None:
    run_with_helper()
    run_with_folds()


if __name__ == "__main__":
    main()
